package search

import (
	"math"
	"sort"

	"pmihp/internal/itemset"
	"pmihp/internal/txdb"
)

// Ranked retrieval with itemset evidence — the paper's second application
// ("frequent itemsets mined from a text database may be useful in the task
// of document ranking", §1). A document scores the sum of the inverse
// document frequencies of the query words it contains, plus a bonus for
// every mined frequent itemset of query words it covers entirely: a
// document matching words that are *known to co-occur meaningfully* ranks
// above one matching the same number of unrelated words.

// RankedDoc is one scored document.
type RankedDoc struct {
	TID   txdb.TID
	Score float64
}

// IDF returns log(N/df) for the word, or 0 for unindexed words.
func (idx *Index) IDF(word string) float64 {
	df := idx.DocFreq(word)
	if df == 0 {
		return 0
	}
	return math.Log(float64(idx.docs) / float64(df))
}

// Rank scores every document containing at least one query word. frequent
// supplies mined itemsets for the co-occurrence bonus (nil disables it);
// limit truncates the result (0 keeps everything). Ties break by ascending
// TID so output is deterministic.
func (idx *Index) Rank(words []string, frequent []itemset.Counted, limit int) []RankedDoc {
	// Resolve the query once.
	type qword struct {
		id  itemset.Item
		idf float64
	}
	var q []qword
	qset := itemset.Itemset{}
	for _, w := range words {
		id, ok := idx.vocab.ID(w)
		if !ok {
			continue
		}
		q = append(q, qword{id, idx.IDF(w)})
		qset = itemset.Union(qset, itemset.Itemset{id})
	}
	if len(q) == 0 {
		return nil
	}

	// Base scores: disjunctive idf accumulation.
	scores := make(map[txdb.TID]float64)
	for _, w := range q {
		for _, tid := range idx.postings[w.id] {
			scores[tid] += w.idf
		}
	}

	// Itemset bonus: frequent itemsets fully inside the query, scored on
	// the documents containing all their members.
	for _, c := range frequent {
		if len(c.Set) < 2 || !c.Set.SubsetOf(qset) {
			continue
		}
		bonus := 0.0
		for _, it := range c.Set {
			bonus += idx.IDF(idx.vocab.Word(it))
		}
		bonus /= 2 // half the members' idf mass, rewarding joint evidence
		for _, tid := range idx.intersectPostings(c.Set) {
			scores[tid] += bonus
		}
	}

	out := make([]RankedDoc, 0, len(scores))
	for tid, s := range scores {
		out = append(out, RankedDoc{TID: tid, Score: s})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].TID < out[j].TID
	})
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

// intersectPostings returns the documents containing every item of s.
func (idx *Index) intersectPostings(s itemset.Itemset) []txdb.TID {
	var acc []txdb.TID
	for i, it := range s {
		p := idx.postings[it]
		if p == nil {
			return nil
		}
		if i == 0 {
			acc = p
			continue
		}
		acc = intersect(acc, p)
		if len(acc) == 0 {
			return nil
		}
	}
	return acc
}

// Package trec reads documents in the TREC text-collection markup used by
// the paper's Wall Street Journal sample (TREC volumes store each article
// as an SGML-ish <DOC> block with <DOCNO> and <TEXT> children). With real
// TREC WSJ data on disk, the pipeline of the paper can be run verbatim:
//
//	docs, _ := trec.ParseFile("wsj_0401", trec.DayFromDocno)
//	db, vocab := text.ToDB(docs, nil)
//	res, _ := core.MinePMIHP(db, core.PMIHPConfig{Nodes: 8}, opts)
//
// The parser is deliberately forgiving: unknown tags inside <DOC> are
// treated as text containers or ignored, since TREC sub-collections differ
// in their auxiliary fields (<HL>, <LP>, <DATELINE>, …).
package trec

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"pmihp/internal/text"
)

// Doc is one parsed TREC document.
type Doc struct {
	DocNo string // contents of <DOCNO>, e.g. "WSJ900402-0001"
	Body  string // concatenated text content of the block
}

// DayFunc assigns a publication day ordinal to a parsed document; documents
// are distributed to simulated nodes chronologically by this value.
type DayFunc func(doc Doc, index int) int

// DayFromDocno derives the day from WSJ-style document numbers
// ("WSJ900402-0001" → 900402). Documents with unparsable numbers share
// day 0, which keeps them in a single chronological block.
func DayFromDocno(doc Doc, _ int) int {
	s := doc.DocNo
	i := 0
	for i < len(s) && !isDigit(s[i]) {
		i++
	}
	j := i
	for j < len(s) && isDigit(s[j]) {
		j++
	}
	if j-i < 6 {
		return 0
	}
	n, err := strconv.Atoi(s[i : i+6])
	if err != nil {
		return 0
	}
	return n
}

// DayByIndex assigns days by evenly slicing the document sequence into the
// given number of days — for collections without date information.
func DayByIndex(days, total int) DayFunc {
	return func(_ Doc, index int) int {
		if total <= 0 || days <= 0 {
			return 0
		}
		d := index * days / total
		if d >= days {
			d = days - 1
		}
		return d
	}
}

// Parse reads every <DOC> block from r.
func Parse(r io.Reader) ([]Doc, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)

	var docs []Doc
	var cur *Doc
	var body strings.Builder
	inDocno := false
	lineNo := 0

	flushDoc := func() {
		if cur != nil {
			cur.Body = body.String()
			docs = append(docs, *cur)
			cur = nil
			body.Reset()
		}
	}

	for sc.Scan() {
		lineNo++
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		switch {
		case strings.HasPrefix(trimmed, "<DOC>"):
			if cur != nil {
				return nil, fmt.Errorf("trec: line %d: <DOC> inside an open document", lineNo)
			}
			cur = &Doc{}
		case strings.HasPrefix(trimmed, "</DOC>"):
			if cur == nil {
				return nil, fmt.Errorf("trec: line %d: </DOC> without <DOC>", lineNo)
			}
			flushDoc()
		case cur == nil:
			// Content outside <DOC> blocks (volume headers) is skipped.
		case strings.HasPrefix(trimmed, "<DOCNO>"):
			rest := strings.TrimPrefix(trimmed, "<DOCNO>")
			if idx := strings.Index(rest, "</DOCNO>"); idx >= 0 {
				cur.DocNo = strings.TrimSpace(rest[:idx])
			} else {
				cur.DocNo = strings.TrimSpace(rest)
				inDocno = true
			}
		case inDocno:
			if idx := strings.Index(trimmed, "</DOCNO>"); idx >= 0 {
				cur.DocNo = strings.TrimSpace(cur.DocNo + " " + strings.TrimSpace(trimmed[:idx]))
				inDocno = false
			} else {
				cur.DocNo += " " + trimmed
			}
		default:
			// Everything else inside the document contributes its text,
			// with markup tags stripped.
			body.WriteString(stripTags(line))
			body.WriteByte('\n')
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trec: %w", err)
	}
	if cur != nil {
		return nil, fmt.Errorf("trec: unterminated <DOC> (docno %q)", cur.DocNo)
	}
	return docs, nil
}

// ParseFile reads a TREC file and preprocesses each document into the
// mining pipeline's form (tokenized, monocased, stop-filtered word sets),
// assigning days with dayOf (nil selects DayFromDocno). Days are normalized
// to dense ordinals preserving order.
func ParseFile(path string, dayOf DayFunc) ([]text.Document, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	raw, err := Parse(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return Prepare(raw, dayOf), nil
}

// Prepare converts parsed documents into preprocessed mining documents.
func Prepare(raw []Doc, dayOf DayFunc) []text.Document {
	if dayOf == nil {
		dayOf = DayFromDocno
	}
	days := make([]int, len(raw))
	for i, d := range raw {
		days[i] = dayOf(d, i)
	}
	dense := denseDays(days)
	docs := make([]text.Document, len(raw))
	for i, d := range raw {
		docs[i] = text.PrepareDocument(dense[i], d.Body)
	}
	return docs
}

// denseDays maps arbitrary day keys (e.g. 900402) to dense ordinals in
// ascending key order.
func denseDays(days []int) []int {
	uniq := map[int]int{}
	for _, d := range days {
		uniq[d] = 0
	}
	keys := make([]int, 0, len(uniq))
	for d := range uniq {
		keys = append(keys, d)
	}
	// insertion sort; day counts are small
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	for i, d := range keys {
		uniq[d] = i
	}
	out := make([]int, len(days))
	for i, d := range days {
		out[i] = uniq[d]
	}
	return out
}

// stripTags removes SGML tags from a line, keeping their text content.
func stripTags(line string) string {
	var b strings.Builder
	inTag := false
	for _, r := range line {
		switch {
		case r == '<':
			inTag = true
		case r == '>':
			inTag = false
			b.WriteByte(' ')
		case !inTag:
			b.WriteRune(r)
		}
	}
	return b.String()
}

func isDigit(b byte) bool { return b >= '0' && b <= '9' }

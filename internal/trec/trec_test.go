package trec

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `<DOC>
<DOCNO> WSJ900402-0001 </DOCNO>
<HL> Stock Markets Rally </HL>
<TEXT>
The stock market rallied sharply as interest rates fell.
Traders cited the federal report on inflation.
</TEXT>
</DOC>
<DOC>
<DOCNO> WSJ900403-0117 </DOCNO>
<TEXT>
Bond prices slipped. The market awaited the employment report.
</TEXT>
</DOC>
`

func TestParse(t *testing.T) {
	docs, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 2 {
		t.Fatalf("parsed %d docs", len(docs))
	}
	if docs[0].DocNo != "WSJ900402-0001" {
		t.Fatalf("DocNo = %q", docs[0].DocNo)
	}
	if !strings.Contains(docs[0].Body, "stock market rallied") {
		t.Fatalf("body lost text: %q", docs[0].Body)
	}
	if strings.Contains(docs[0].Body, "<TEXT>") || strings.Contains(docs[0].Body, "<HL>") {
		t.Fatalf("markup leaked into body: %q", docs[0].Body)
	}
	// Auxiliary containers like <HL> contribute their text.
	if !strings.Contains(docs[0].Body, "Stock Markets Rally") {
		t.Fatalf("headline text dropped: %q", docs[0].Body)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"<DOC>\n<DOC>\n",            // nested
		"</DOC>\n",                  // close without open
		"<DOC>\n<DOCNO>x</DOCNO>\n", // unterminated
	}
	for _, s := range bad {
		if _, err := Parse(strings.NewReader(s)); err == nil {
			t.Errorf("accepted malformed input %q", s)
		}
	}
}

func TestParseSkipsInterstitialText(t *testing.T) {
	in := "volume header junk\n" + sample + "trailing junk\n"
	docs, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 2 {
		t.Fatalf("parsed %d docs", len(docs))
	}
}

func TestDayFromDocno(t *testing.T) {
	cases := []struct {
		docno string
		want  int
	}{
		{"WSJ900402-0001", 900402},
		{"WSJ911001-0123", 911001},
		{"AP880212-0001", 880212},
		{"NODATE", 0},
		{"X12-3", 0}, // too few digits
	}
	for _, c := range cases {
		if got := DayFromDocno(Doc{DocNo: c.docno}, 0); got != c.want {
			t.Errorf("DayFromDocno(%q) = %d, want %d", c.docno, got, c.want)
		}
	}
}

func TestPrepareDenseDays(t *testing.T) {
	raw := []Doc{
		{DocNo: "WSJ900403-1", Body: "Bond prices slipped"},
		{DocNo: "WSJ900402-1", Body: "Stocks rallied"},
		{DocNo: "WSJ900403-2", Body: "Rates fell"},
	}
	docs := Prepare(raw, nil)
	// 900402 is the earliest key, so it becomes day 0.
	if docs[0].Day != 1 || docs[1].Day != 0 || docs[2].Day != 1 {
		t.Fatalf("days = %d,%d,%d", docs[0].Day, docs[1].Day, docs[2].Day)
	}
	// Preprocessing applied: lowercased, stop-filtered, sorted distinct.
	found := false
	for _, w := range docs[1].Words {
		if w == "stocks" {
			found = true
		}
		if w == "the" {
			t.Fatal("stop word survived")
		}
	}
	if !found {
		t.Fatalf("words = %v", docs[1].Words)
	}
}

func TestDayByIndex(t *testing.T) {
	f := DayByIndex(4, 100)
	if f(Doc{}, 0) != 0 || f(Doc{}, 99) != 3 || f(Doc{}, 50) != 2 {
		t.Fatal("DayByIndex slicing wrong")
	}
}

func TestParseFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wsj_sample")
	if err := os.WriteFile(path, []byte(sample), 0o644); err != nil {
		t.Fatal(err)
	}
	docs, err := ParseFile(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 2 {
		t.Fatalf("parsed %d docs", len(docs))
	}
	if _, err := ParseFile(filepath.Join(dir, "missing"), nil); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestStripTags(t *testing.T) {
	got := stripTags("<p>Hello <b>world</b></p>")
	if !strings.Contains(got, "Hello") || !strings.Contains(got, "world") ||
		strings.Contains(got, "<") {
		t.Fatalf("stripTags = %q", got)
	}
}

package rules

import (
	"encoding/json"
	"fmt"
	"io"
	"slices"
	"sort"
	"unicode/utf8"

	"pmihp/internal/itemset"
)

// WordRule is an association rule in word form — the shape WriteJSON
// exports and the serving layer consumes. Sides are sorted lexically and
// deduplicated, mirroring the itemset invariant (item ids are assigned in
// lexical word order, so the orders coincide).
type WordRule struct {
	Antecedent []string `json:"antecedent"`
	Consequent []string `json:"consequent"`
	Support    int      `json:"support"`
	Frac       float64  `json:"supportFraction,omitempty"`
	Confidence float64  `json:"confidence"`
	Lift       float64  `json:"lift,omitempty"`
}

// ToWordRules renders rules into word form through name, preserving order.
func ToWordRules(rs []Rule, name func(itemset.Item) string) []WordRule {
	out := make([]WordRule, len(rs))
	for i, r := range rs {
		out[i] = WordRule{
			Antecedent: words(r.Antecedent, name),
			Consequent: words(r.Consequent, name),
			Support:    r.Support,
			Frac:       r.Frac,
			Confidence: r.Confidence,
			Lift:       r.Lift,
		}
	}
	return out
}

// CanonWord is Canon on word-form rules: confidence desc, support desc,
// then lexicographic antecedent and consequent word lists. Because item
// ids are assigned in lexical word order, CanonWord on rendered rules
// agrees exactly with Canon on the originals.
func CanonWord(a, b WordRule) int {
	switch {
	case a.Confidence > b.Confidence:
		return -1
	case a.Confidence < b.Confidence:
		return 1
	}
	switch {
	case a.Support > b.Support:
		return -1
	case a.Support < b.Support:
		return 1
	}
	if c := slices.Compare(a.Antecedent, b.Antecedent); c != 0 {
		return c
	}
	return slices.Compare(a.Consequent, b.Consequent)
}

// SortWordRules sorts word rules into the CanonWord order in place.
func SortWordRules(ws []WordRule) {
	sort.Slice(ws, func(i, j int) bool { return CanonWord(ws[i], ws[j]) < 0 })
}

// ParseJSON reads a rule set written by WriteJSON (a JSON array of word
// rules). Sides are normalized — sorted lexically, deduplicated — and
// validated: every rule must have a non-empty antecedent and consequent
// with no overlap, and a confidence in (0, 1].
func ParseJSON(r io.Reader) ([]WordRule, error) {
	var ws []WordRule
	dec := json.NewDecoder(r)
	if err := dec.Decode(&ws); err != nil {
		return nil, fmt.Errorf("rules: parsing JSON rule set: %w", err)
	}
	for i := range ws {
		ws[i].Antecedent = normalizeSide(ws[i].Antecedent)
		ws[i].Consequent = normalizeSide(ws[i].Consequent)
		if len(ws[i].Antecedent) == 0 || len(ws[i].Consequent) == 0 {
			return nil, fmt.Errorf("rules: rule %d has an empty side", i)
		}
		// The JSON decoder passes invalid UTF-8 through, but every
		// consumer (index buckets, re-export) assumes valid strings —
		// and re-encoding would silently rewrite the bytes. Reject.
		for _, w := range ws[i].Antecedent {
			if !utf8.ValidString(w) {
				return nil, fmt.Errorf("rules: rule %d word %q is not valid UTF-8", i, w)
			}
		}
		for _, w := range ws[i].Consequent {
			if !utf8.ValidString(w) {
				return nil, fmt.Errorf("rules: rule %d word %q is not valid UTF-8", i, w)
			}
		}
		for _, w := range ws[i].Consequent {
			if slices.Contains(ws[i].Antecedent, w) {
				return nil, fmt.Errorf("rules: rule %d repeats %q on both sides", i, w)
			}
		}
		if c := ws[i].Confidence; c <= 0 || c > 1 {
			return nil, fmt.Errorf("rules: rule %d has confidence %v outside (0, 1]", i, c)
		}
	}
	return ws, nil
}

// normalizeSide sorts and deduplicates one side's word list in place.
func normalizeSide(s []string) []string {
	slices.Sort(s)
	return slices.Compact(s)
}

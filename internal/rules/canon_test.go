package rules

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"strings"
	"testing"

	"pmihp/internal/itemset"
)

// TestGenerateOrderIsCanonicalAndTotal: Canon is a total order over
// distinct rules (no two generated rules ever compare equal), so the
// output order cannot depend on anything but the rule set itself.
func TestGenerateOrderIsCanonicalAndTotal(t *testing.T) {
	rs := Generate(fixture(), 4, 0.5)
	if len(rs) < 2 {
		t.Fatalf("fixture generated %d rules", len(rs))
	}
	for i := 1; i < len(rs); i++ {
		if Canon(rs[i-1], rs[i]) >= 0 {
			t.Fatalf("rules %d,%d out of canonical order: %v then %v", i-1, i, rs[i-1], rs[i])
		}
	}
	// Permuting the frequent-itemset input must not move a single rule.
	in := fixture()
	for trial := 0; trial < 20; trial++ {
		rand.New(rand.NewSource(int64(trial))).Shuffle(len(in), func(i, j int) {
			in[i], in[j] = in[j], in[i]
		})
		got := Generate(in, 4, 0.5)
		if len(got) != len(rs) {
			t.Fatalf("trial %d: %d rules, want %d", trial, len(got), len(rs))
		}
		for i := range got {
			if Canon(got[i], rs[i]) != 0 {
				t.Fatalf("trial %d: rule %d differs: %v vs %v", trial, i, got[i], rs[i])
			}
		}
	}
	// Ties in (confidence, support) break on antecedent then consequent,
	// ascending — pinned explicitly, not just via the comparator.
	a := Rule{Antecedent: itemset.New(1), Consequent: itemset.New(3), Support: 2, Confidence: 0.5}
	b := Rule{Antecedent: itemset.New(2), Consequent: itemset.New(3), Support: 2, Confidence: 0.5}
	c := Rule{Antecedent: itemset.New(1), Consequent: itemset.New(4), Support: 2, Confidence: 0.5}
	if Canon(a, b) >= 0 || Canon(b, a) <= 0 || Canon(a, c) >= 0 {
		t.Fatal("tie-break order wrong")
	}
	if Canon(a, a) != 0 {
		t.Fatal("rule not equal to itself")
	}
	shuffled := []Rule{b, c, a}
	SortCanonical(shuffled)
	if Canon(shuffled[0], a) != 0 || Canon(shuffled[1], c) != 0 || Canon(shuffled[2], b) != 0 {
		t.Fatalf("SortCanonical order: %v", shuffled)
	}
}

func TestGenerateEmptyAndDegenerate(t *testing.T) {
	if rs := Generate(nil, 4, 0.5); len(rs) != 0 {
		t.Fatalf("rules from an empty frequent set: %v", rs)
	}
	// Single-item sets alone admit no rules: both sides must be non-empty.
	singles := []itemset.Counted{
		{Set: itemset.New(1), Count: 4},
		{Set: itemset.New(2), Count: 3},
	}
	if rs := Generate(singles, 4, 0.1); len(rs) != 0 {
		t.Fatalf("rules from 1-itemsets only: %v", rs)
	}
}

// TestConfidenceOneBoundary: minconf 1.0 keeps exactly the certain
// rules, and their confidence is exactly 1.0 (count division, not an
// approximation).
func TestConfidenceOneBoundary(t *testing.T) {
	rs := Generate(fixture(), 4, 1.0)
	if len(rs) == 0 {
		t.Fatal("no rules at minconf 1.0; fixture has certain rules (2=>1)")
	}
	for _, r := range rs {
		if r.Confidence != 1.0 {
			t.Fatalf("minconf 1.0 kept %v", r)
		}
	}
	// Just above is impossible to satisfy.
	if over := Generate(fixture(), 4, math.Nextafter(1.0, 2.0)); len(over) != 0 {
		t.Fatalf("rules above confidence 1.0: %v", over)
	}
}

// TestJSONRoundTrip: WriteJSON → ParseJSON must reproduce every field
// bit-exactly, including a zero supportFraction surviving its omitempty
// tag, so a served index built from the export equals one built in
// process.
func TestJSONRoundTrip(t *testing.T) {
	rs := Generate(fixture(), 4, 0.5)
	// Item ids are assigned in lexical word order (text.ToDB), so the
	// test vocabulary must respect that: ParseJSON normalizes each side
	// to word order, which only equals id order under the invariant.
	names := map[itemset.Item]string{1: "apple", 2: "berry", 3: "citrus"}
	name := func(it itemset.Item) string { return names[it] }

	var buf bytes.Buffer
	if err := WriteJSON(&buf, rs, name); err != nil {
		t.Fatal(err)
	}
	ws, err := ParseJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	direct := ToWordRules(rs, name)
	if len(ws) != len(direct) {
		t.Fatalf("parsed %d rules, want %d", len(ws), len(direct))
	}
	for i := range ws {
		got := mustMarshal(t, ws[i])
		want := mustMarshal(t, direct[i])
		if !bytes.Equal(got, want) {
			t.Fatalf("rule %d: %s vs %s", i, got, want)
		}
	}

	// Frac == 0 is dropped by omitempty on the wire; it must come back as
	// exactly 0, and rules without lift likewise.
	bare := []Rule{{Antecedent: itemset.New(1), Consequent: itemset.New(2), Support: 7, Confidence: 0.9}}
	buf.Reset()
	if err := WriteJSON(&buf, bare, name); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "supportFraction") || strings.Contains(buf.String(), "lift") {
		t.Fatalf("zero optional fields serialized:\n%s", buf.String())
	}
	back, err := ParseJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0].Frac != 0 || back[0].Lift != 0 || back[0].Support != 7 {
		t.Fatalf("round-tripped %+v", back)
	}
}

func TestParseJSONRejectsInvalid(t *testing.T) {
	for name, in := range map[string]string{
		"not json":          "{nope",
		"empty antecedent":  `[{"antecedent":[],"consequent":["b"],"support":1,"confidence":0.5}]`,
		"empty consequent":  `[{"antecedent":["a"],"consequent":[],"support":1,"confidence":0.5}]`,
		"overlapping sides": `[{"antecedent":["a"],"consequent":["a"],"support":1,"confidence":0.5}]`,
		"zero confidence":   `[{"antecedent":["a"],"consequent":["b"],"support":1,"confidence":0}]`,
		"confidence over 1": `[{"antecedent":["a"],"consequent":["b"],"support":1,"confidence":1.5}]`,
	} {
		if _, err := ParseJSON(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// A duplicate word inside one side dedupes rather than errors.
	ws, err := ParseJSON(strings.NewReader(`[{"antecedent":["b","a","a"],"consequent":["c"],"support":1,"confidence":0.5}]`))
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 1 || len(ws[0].Antecedent) != 2 || ws[0].Antecedent[0] != "a" {
		t.Fatalf("dedup/sort: %+v", ws)
	}
}

func mustMarshal(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

package rules

import (
	"bytes"
	"encoding/json"
	"reflect"
	"slices"
	"strings"
	"testing"
)

// FuzzParseJSON holds the rule-set parser to the serving layer's bar:
// arbitrary input never panics, anything accepted is fully normalized
// (sorted deduplicated sides, non-empty, disjoint, confidence in (0, 1]),
// and accepted rule sets are a fixed point — re-marshaling and re-parsing
// reproduces them exactly, optional fields included.
func FuzzParseJSON(f *testing.F) {
	f.Add([]byte(``))
	f.Add([]byte(`null`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`{`))
	f.Add([]byte(`[{"antecedent":["b","a","a"],"consequent":["c"],"support":3,"supportFraction":0.1,"confidence":0.8,"lift":1.2}]`))
	// Zero optional fields: Frac and Lift are omitempty and must survive
	// the round trip as zeros.
	f.Add([]byte(`[{"antecedent":["x"],"consequent":["y"],"support":2,"confidence":1}]`))
	f.Add([]byte(`[{"antecedent":["a"],"consequent":["a"],"confidence":0.5}]`))
	f.Add([]byte(`[{"antecedent":[],"consequent":["y"],"confidence":0.5}]`))
	f.Add([]byte(`[{"antecedent":["x"],"consequent":["y"],"confidence":1.5}]`))
	f.Add([]byte(`[{"antecedent":["x"],"consequent":["y"],"confidence":0}]`))

	f.Fuzz(func(t *testing.T, data []byte) {
		ws, err := ParseJSON(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i, w := range ws {
			if len(w.Antecedent) == 0 || len(w.Consequent) == 0 {
				t.Fatalf("rule %d accepted with an empty side", i)
			}
			for _, side := range [][]string{w.Antecedent, w.Consequent} {
				if !slices.IsSorted(side) || len(slices.Compact(slices.Clone(side))) != len(side) {
					t.Fatalf("rule %d side %q not sorted and deduplicated", i, side)
				}
			}
			for _, word := range w.Consequent {
				if slices.Contains(w.Antecedent, word) {
					t.Fatalf("rule %d accepted with %q on both sides", i, word)
				}
			}
			if w.Confidence <= 0 || w.Confidence > 1 {
				t.Fatalf("rule %d accepted with confidence %v", i, w.Confidence)
			}
		}
		// Fixed point: what ParseJSON accepts, it reproduces bit for bit
		// through a marshal/parse cycle (normalization is idempotent).
		enc, err := json.Marshal(ws)
		if err != nil {
			t.Fatalf("accepted rule set does not re-marshal: %v", err)
		}
		again, err := ParseJSON(bytes.NewReader(enc))
		if err != nil {
			t.Fatalf("re-parsing accepted rule set: %v", err)
		}
		if !reflect.DeepEqual(ws, again) {
			t.Fatalf("round trip diverged:\n%+v\n%+v", ws, again)
		}
	})
}

// TestParseJSONAttributesErrors pins that corrupt and invalid inputs are
// rejected with errors naming the offending rule, not dropped or
// accepted.
func TestParseJSONAttributesErrors(t *testing.T) {
	cases := map[string]struct {
		in   string
		want string
	}{
		"truncated":         {`[{"antecedent":["x"]`, "parsing JSON"},
		"not json":          {`@@`, "parsing JSON"},
		"empty antecedent":  {`[{"antecedent":[],"consequent":["y"],"confidence":0.5}]`, "rule 0 has an empty side"},
		"overlap":           {`[{"antecedent":["x"],"consequent":["y"],"confidence":0.9},{"antecedent":["a","b"],"consequent":["b"],"confidence":0.9}]`, `rule 1 repeats "b"`},
		"zero confidence":   {`[{"antecedent":["x"],"consequent":["y"],"confidence":0}]`, "confidence 0 outside"},
		"confidence above1": {`[{"antecedent":["x"],"consequent":["y"],"confidence":1.01}]`, "outside (0, 1]"},
	}
	for name, tc := range cases {
		_, err := ParseJSON(strings.NewReader(tc.in))
		if err == nil {
			t.Errorf("%s: accepted", name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not contain %q", name, err, tc.want)
		}
	}
}

// TestParseJSONZeroOptionalFields pins the omitempty contract: a rule
// with zero Frac and Lift round-trips through WriteJSON-shaped output
// without the optional keys and parses back equal.
func TestParseJSONZeroOptionalFields(t *testing.T) {
	in := []WordRule{{Antecedent: []string{"a"}, Consequent: []string{"b"}, Support: 2, Confidence: 1}}
	enc, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(enc), "supportFraction") || strings.Contains(string(enc), "lift") {
		t.Fatalf("zero optional fields serialized: %s", enc)
	}
	out, err := ParseJSON(bytes.NewReader(enc))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip diverged: %+v vs %+v", in, out)
	}
}

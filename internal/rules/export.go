package rules

import (
	"encoding/csv"
	"encoding/json"
	"io"
	"strconv"
	"strings"

	"pmihp/internal/itemset"
)

// Export formats for mined rules, so downstream tools (spreadsheets,
// thesaurus builders, retrieval systems) can consume them without linking
// this module.

// jsonRule is the stable wire form of a rule.
type jsonRule struct {
	Antecedent []string `json:"antecedent"`
	Consequent []string `json:"consequent"`
	Support    int      `json:"support"`
	Frac       float64  `json:"supportFraction,omitempty"`
	Confidence float64  `json:"confidence"`
	Lift       float64  `json:"lift,omitempty"`
}

// WriteJSON writes the rules as a JSON array, resolving items to words
// through name.
func WriteJSON(w io.Writer, rs []Rule, name func(itemset.Item) string) error {
	out := make([]jsonRule, len(rs))
	for i, r := range rs {
		out[i] = jsonRule{
			Antecedent: words(r.Antecedent, name),
			Consequent: words(r.Consequent, name),
			Support:    r.Support,
			Frac:       r.Frac,
			Confidence: r.Confidence,
			Lift:       r.Lift,
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// WriteCSV writes the rules as CSV with a header row; itemset sides are
// space-joined word lists.
func WriteCSV(w io.Writer, rs []Rule, name func(itemset.Item) string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"antecedent", "consequent", "support", "confidence", "lift"}); err != nil {
		return err
	}
	for _, r := range rs {
		rec := []string{
			strings.Join(words(r.Antecedent, name), " "),
			strings.Join(words(r.Consequent, name), " "),
			strconv.Itoa(r.Support),
			strconv.FormatFloat(r.Confidence, 'f', 4, 64),
			strconv.FormatFloat(r.Lift, 'f', 4, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func words(s itemset.Itemset, name func(itemset.Item) string) []string {
	out := make([]string, len(s))
	for i, it := range s {
		out[i] = name(it)
	}
	return out
}

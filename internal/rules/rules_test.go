package rules

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"testing"

	"pmihp/internal/itemset"
	"pmihp/internal/mining"
	"pmihp/internal/txdb"
)

// fixture: {1,2} in 3 of 4 docs, {1} in 4, {2} in 3.
func fixture() []itemset.Counted {
	return []itemset.Counted{
		{Set: itemset.New(1), Count: 4},
		{Set: itemset.New(2), Count: 3},
		{Set: itemset.New(3), Count: 2},
		{Set: itemset.New(1, 2), Count: 3},
		{Set: itemset.New(1, 3), Count: 2},
		{Set: itemset.New(2, 3), Count: 2},
		{Set: itemset.New(1, 2, 3), Count: 2},
	}
}

func TestGenerateConfidence(t *testing.T) {
	rs := Generate(fixture(), 4, 0.75)
	find := func(a, c itemset.Itemset) *Rule {
		for i := range rs {
			if rs[i].Antecedent.Equal(a) && rs[i].Consequent.Equal(c) {
				return &rs[i]
			}
		}
		return nil
	}
	// 2 => 1 has confidence 3/3 = 1.0.
	r := find(itemset.New(2), itemset.New(1))
	if r == nil || r.Confidence != 1.0 || r.Support != 3 {
		t.Fatalf("2=>1 = %+v", r)
	}
	// 1 => 2 has confidence 3/4 = 0.75, just at threshold.
	if find(itemset.New(1), itemset.New(2)) == nil {
		t.Fatal("1=>2 missing at minconf 0.75")
	}
	// At 0.8 it must vanish.
	rs8 := Generate(fixture(), 4, 0.80)
	for _, r := range rs8 {
		if r.Confidence < 0.80 {
			t.Fatalf("rule below minconf: %+v", r)
		}
	}
	// 3-itemset rules: {2,3} => {1}? {2,3} not frequent, so no rule from it,
	// but {1,3} => {2} (2/2 = 1.0) must exist.
	if find(itemset.New(1, 3), itemset.New(2)) == nil {
		t.Fatal("{1,3}=>{2} missing")
	}
}

func TestRuleBookkeeping(t *testing.T) {
	rs := Generate(fixture(), 4, 0.5)
	for _, r := range rs {
		if len(r.Antecedent) == 0 || len(r.Consequent) == 0 {
			t.Fatalf("empty side: %+v", r)
		}
		if len(itemset.Intersect(r.Antecedent, r.Consequent)) != 0 {
			t.Fatalf("overlapping sides: %+v", r)
		}
		if r.Confidence < 0.5 || r.Confidence > 1.0 {
			t.Fatalf("confidence out of range: %+v", r)
		}
		if r.Frac != float64(r.Support)/4 {
			t.Fatalf("frac wrong: %+v", r)
		}
		if r.Lift <= 0 {
			t.Fatalf("lift missing: %+v", r)
		}
	}
	// Deterministic ranking: confidence desc.
	for i := 1; i < len(rs); i++ {
		if rs[i].Confidence > rs[i-1].Confidence {
			t.Fatal("rules not sorted by confidence")
		}
	}
}

func TestGenerateFromMiner(t *testing.T) {
	// End to end: rules from a real mining result must respect the
	// confidence definition against raw counts.
	txs := []txdb.Transaction{
		{TID: 0, Items: itemset.New(1, 2, 3)},
		{TID: 1, Items: itemset.New(1, 2)},
		{TID: 2, Items: itemset.New(1, 2, 4)},
		{TID: 3, Items: itemset.New(2, 3)},
		{TID: 4, Items: itemset.New(1, 3)},
	}
	db := txdb.New(txs, 6)
	res := mining.BruteForce(db, mining.Options{MinSupCount: 2})
	rs := Generate(res.Frequent, db.Len(), 0.6)
	for _, r := range rs {
		union := itemset.Union(r.Antecedent, r.Consequent)
		supU := mining.CountSupport(db, union)
		supA := mining.CountSupport(db, r.Antecedent)
		if r.Support != supU {
			t.Fatalf("support mismatch for %v: %d vs %d", r, r.Support, supU)
		}
		if got := float64(supU) / float64(supA); got != r.Confidence {
			t.Fatalf("confidence mismatch for %v: %g vs %g", r, r.Confidence, got)
		}
	}
}

func TestWithConsequent(t *testing.T) {
	rs := Generate(fixture(), 4, 0.5)
	for _, r := range WithConsequent(rs, 1) {
		if len(r.Consequent) != 1 || r.Consequent[0] != 1 {
			t.Fatalf("wrong consequent: %+v", r)
		}
	}
	if len(WithConsequent(rs, 99)) != 0 {
		t.Fatal("rules for unknown item")
	}
}

func TestRenderAndString(t *testing.T) {
	r := Rule{
		Antecedent: itemset.New(0), Consequent: itemset.New(1),
		Support: 5, Confidence: 0.83,
	}
	names := []string{"beer", "diapers"}
	got := r.Render(func(it itemset.Item) string { return names[it] })
	want := "beer => diapers (sup=5, conf=0.83)"
	if got != want {
		t.Fatalf("Render = %q, want %q", got, want)
	}
	if r.String() == "" {
		t.Fatal("empty String")
	}
}

func TestTruncatedInputIsSafe(t *testing.T) {
	// A frequent list missing the 1-itemsets (e.g. from a MaxK run that
	// dropped them) must not panic or divide by zero.
	in := []itemset.Counted{{Set: itemset.New(1, 2), Count: 3}}
	if rs := Generate(in, 4, 0.5); len(rs) != 0 {
		t.Fatalf("rules from truncated input: %v", rs)
	}
}

func TestWriteJSON(t *testing.T) {
	rs := Generate(fixture(), 4, 0.75)
	var buf bytes.Buffer
	names := map[itemset.Item]string{1: "beer", 2: "diapers", 3: "chips"}
	if err := WriteJSON(&buf, rs, func(it itemset.Item) string { return names[it] }); err != nil {
		t.Fatal(err)
	}
	var decoded []map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if len(decoded) != len(rs) {
		t.Fatalf("decoded %d rules, want %d", len(decoded), len(rs))
	}
	for _, d := range decoded {
		if d["confidence"].(float64) < 0.75 {
			t.Fatalf("confidence lost: %v", d)
		}
	}
}

func TestWriteCSV(t *testing.T) {
	rs := Generate(fixture(), 4, 0.75)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, rs, func(it itemset.Item) string { return fmt.Sprintf("w%d", it) }); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != len(rs)+1 {
		t.Fatalf("csv rows = %d, want %d", len(records), len(rs)+1)
	}
	if records[0][0] != "antecedent" {
		t.Fatalf("header = %v", records[0])
	}
}

package rules_test

import (
	"fmt"

	"pmihp/internal/itemset"
	"pmihp/internal/rules"
)

func ExampleGenerate() {
	// Frequent itemsets with exact supports over a 10-document corpus:
	// "beer" (item 0) in 5, "diapers" (item 1) in 6, both together in 4.
	frequent := []itemset.Counted{
		{Set: itemset.New(0), Count: 5},
		{Set: itemset.New(1), Count: 6},
		{Set: itemset.New(0, 1), Count: 4},
	}
	names := []string{"beer", "diapers"}
	for _, r := range rules.Generate(frequent, 10, 0.7) {
		fmt.Println(r.Render(func(it itemset.Item) string { return names[it] }))
	}
	// Output:
	// beer => diapers (sup=4, conf=0.80)
}

// Package rules implements the second step of association mining — forming
// association rules from the frequent itemsets (section 1 of the paper,
// following Agrawal & Srikant): for every frequent itemset f and non-empty
// proper subset a, emit a ⇒ f−a when support(f)/support(a) reaches the
// minimum confidence.
package rules

import (
	"fmt"
	"sort"
	"strings"

	"pmihp/internal/itemset"
)

// Rule is an association rule Antecedent ⇒ Consequent.
type Rule struct {
	Antecedent itemset.Itemset
	Consequent itemset.Itemset

	// Support is the number of transactions containing both sides; Frac is
	// the same as a fraction of the database.
	Support int
	Frac    float64

	// Confidence is support(A ∪ C) / support(A).
	Confidence float64

	// Lift is confidence / P(C): how much more often the consequent occurs
	// with the antecedent than on its own (an extension beyond the paper,
	// useful for ranking thesaurus expansions).
	Lift float64
}

// String renders the rule as "{1, 2} => {3} (sup=5, conf=0.83)".
func (r Rule) String() string {
	return fmt.Sprintf("%v => %v (sup=%d, conf=%.2f)", r.Antecedent, r.Consequent, r.Support, r.Confidence)
}

// Render renders the rule with words resolved through name, e.g.
// "beer => diapers (sup=5, conf=0.83)".
func (r Rule) Render(name func(itemset.Item) string) string {
	var b strings.Builder
	writeSide := func(s itemset.Itemset) {
		for i, it := range s {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(name(it))
		}
	}
	writeSide(r.Antecedent)
	b.WriteString(" => ")
	writeSide(r.Consequent)
	fmt.Fprintf(&b, " (sup=%d, conf=%.2f)", r.Support, r.Confidence)
	return b.String()
}

// Canon is the canonical total order on rules: confidence descending,
// then support descending, then lexicographic antecedent, then
// lexicographic consequent. No two distinct rules compare equal (equal
// sides imply the same rule), so any rule set sorted by Canon has exactly
// one order regardless of how it was produced — the property the serving
// layer's byte-identity gate against the offline Expander rests on.
func Canon(a, b Rule) int {
	switch {
	case a.Confidence > b.Confidence:
		return -1
	case a.Confidence < b.Confidence:
		return 1
	}
	switch {
	case a.Support > b.Support:
		return -1
	case a.Support < b.Support:
		return 1
	}
	if c := itemset.Compare(a.Antecedent, b.Antecedent); c != 0 {
		return c
	}
	return itemset.Compare(a.Consequent, b.Consequent)
}

// SortCanonical sorts rules into the Canon order in place.
func SortCanonical(rs []Rule) {
	sort.Slice(rs, func(i, j int) bool { return Canon(rs[i], rs[j]) < 0 })
}

// Generate forms all rules meeting minConf from the frequent itemsets.
// frequent must contain every frequent itemset with its exact support
// (including the 1-itemsets, which seed the support lookups); dbLen is the
// number of transactions. Rules are returned in the Canon order —
// confidence desc, ties by support desc, then lexicographic antecedent and
// consequent — so output never depends on the order of frequent.
func Generate(frequent []itemset.Counted, dbLen int, minConf float64) []Rule {
	support := make(map[string]int, len(frequent))
	for _, c := range frequent {
		support[c.Set.Key()] = c.Count
	}
	var out []Rule
	for _, c := range frequent {
		if len(c.Set) < 2 {
			continue
		}
		for _, ante := range c.Set.ProperSubsets() {
			supA, ok := support[ante.Key()]
			if !ok || supA == 0 {
				// A subset of a frequent itemset is always frequent; a
				// missing entry means the caller passed a truncated list
				// (e.g. a MaxK-bounded result without its 1-itemsets).
				continue
			}
			conf := float64(c.Count) / float64(supA)
			if conf < minConf {
				continue
			}
			cons := diff(c.Set, ante)
			r := Rule{
				Antecedent: ante,
				Consequent: cons,
				Support:    c.Count,
				Confidence: conf,
			}
			if dbLen > 0 {
				r.Frac = float64(c.Count) / float64(dbLen)
				if supC, ok := support[cons.Key()]; ok && supC > 0 {
					r.Lift = conf / (float64(supC) / float64(dbLen))
				}
			}
			out = append(out, r)
		}
	}
	SortCanonical(out)
	return out
}

// diff returns the items of f not in a (both sorted).
func diff(f, a itemset.Itemset) itemset.Itemset {
	out := make(itemset.Itemset, 0, len(f)-len(a))
	j := 0
	for _, it := range f {
		for j < len(a) && a[j] < it {
			j++
		}
		if j < len(a) && a[j] == it {
			continue
		}
		out = append(out, it)
	}
	return out
}

// WithConsequent filters rules to those whose consequent is exactly the
// given single item — the shape used for query expansion (B ⇒ C lets a
// search for C pull in documents mentioning only B).
func WithConsequent(rs []Rule, c itemset.Item) []Rule {
	var out []Rule
	for _, r := range rs {
		if len(r.Consequent) == 1 && r.Consequent[0] == c {
			out = append(out, r)
		}
	}
	return out
}

package txdb

import (
	"fmt"
	"sort"

	"pmihp/internal/itemset"
)

// Alternative database-to-node assignments. The paper observes that
// PMIHP's advantage grows with the skewness of the word distribution
// across local databases and cites Cheung et al. (TKDE 2002) for
// partitioning approaches that *increase* skewness; these splitters
// implement that direction (ablation A6 compares them):
//
//   - SplitChronological (txdb.go) is the paper's own assignment;
//   - SplitRoundRobin deals days cyclically, destroying skew — the
//     adversarial baseline;
//   - SplitSkewAware clusters vocabulary-similar days onto the same node,
//     increasing skew beyond plain chronology when topics recur on
//     non-adjacent days.

// dayGroup is a run of consecutive transactions sharing a Day.
type dayGroup struct {
	lo, hi int // transaction index range [lo, hi)
}

func (d *DB) dayGroups() []dayGroup {
	var groups []dayGroup
	for lo := 0; lo < d.Len(); {
		hi := lo + 1
		for hi < d.Len() && d.days[hi] == d.days[lo] {
			hi++
		}
		groups = append(groups, dayGroup{lo, hi})
		lo = hi
	}
	return groups
}

// assemble builds per-node databases from day-group assignments, preserving
// chronological order within each node. Each node's CSR arrays are gathered
// with one bulk copy per day group (groups are contiguous transaction
// runs), never per transaction.
func (d *DB) assemble(assign [][]dayGroup) []*DB {
	out := make([]*DB, len(assign))
	for p, groups := range assign {
		sort.Slice(groups, func(i, j int) bool { return groups[i].lo < groups[j].lo })
		docs, total := 0, 0
		for _, g := range groups {
			docs += g.hi - g.lo
			total += int(d.offsets[g.hi] - d.offsets[g.lo])
		}
		nd := &DB{
			items:    make([]itemset.Item, 0, total),
			offsets:  make([]uint32, 1, docs+1),
			tids:     make([]TID, 0, docs),
			days:     make([]int32, 0, docs),
			numItems: d.numItems,
		}
		for _, g := range groups {
			pos := uint32(len(nd.items))
			nd.items = append(nd.items, d.items[d.offsets[g.lo]:d.offsets[g.hi]]...)
			for i := g.lo; i < g.hi; i++ {
				nd.offsets = append(nd.offsets, pos+d.offsets[i+1]-d.offsets[g.lo])
			}
			nd.tids = append(nd.tids, d.tids[g.lo:g.hi]...)
			nd.days = append(nd.days, d.days[g.lo:g.hi]...)
		}
		out[p] = nd
	}
	return out
}

// SplitRoundRobin deals the day groups cyclically across n nodes. Every
// node sees every period of the corpus, so per-node vocabularies converge —
// the minimum-skew assignment.
func (d *DB) SplitRoundRobin(n int) []*DB {
	if n <= 1 {
		return []*DB{d}
	}
	groups := d.dayGroups()
	assign := make([][]dayGroup, n)
	for i, g := range groups {
		assign[i%n] = append(assign[i%n], g)
	}
	// Degenerate day structure (fewer groups than nodes): fall back to a
	// plain count split so no node is empty.
	for _, a := range assign {
		if len(a) == 0 {
			return d.SplitChronological(n)
		}
	}
	return d.assemble(assign)
}

// SplitSkewAware assigns day groups to nodes greedily, placing each day on
// the node whose accumulated vocabulary it overlaps most (subject to a
// document-count balance cap), which clusters topically similar days and
// maximizes cross-node vocabulary disjointness.
func (d *DB) SplitSkewAware(n int) []*DB {
	if n <= 1 {
		return []*DB{d}
	}
	groups := d.dayGroups()
	if len(groups) < n {
		return d.SplitChronological(n)
	}

	// Per-day vocabularies.
	vocab := make([]map[itemset.Item]struct{}, len(groups))
	for i, g := range groups {
		v := make(map[itemset.Item]struct{})
		for t := g.lo; t < g.hi; t++ {
			for _, it := range d.ItemsOf(t) {
				v[it] = struct{}{}
			}
		}
		vocab[i] = v
	}

	// Largest days first, so the balance cap binds late.
	order := make([]int, len(groups))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ga, gb := groups[order[a]], groups[order[b]]
		if ga.hi-ga.lo != gb.hi-gb.lo {
			return ga.hi-ga.lo > gb.hi-gb.lo
		}
		return order[a] < order[b]
	})

	capDocs := (d.Len()*6)/(5*n) + 1 // 20% imbalance allowance
	nodeVocab := make([]map[itemset.Item]struct{}, n)
	nodeDocs := make([]int, n)
	assign := make([][]dayGroup, n)
	for p := range nodeVocab {
		nodeVocab[p] = make(map[itemset.Item]struct{})
	}

	for _, gi := range order {
		g := groups[gi]
		docs := g.hi - g.lo
		best, bestOverlap := -1, -1
		for p := 0; p < n; p++ {
			if nodeDocs[p] > 0 && nodeDocs[p]+docs > capDocs {
				continue
			}
			overlap := 0
			for it := range vocab[gi] {
				if _, ok := nodeVocab[p][it]; ok {
					overlap++
				}
			}
			// Prefer the highest overlap; break ties toward the emptier
			// node so early days seed distinct clusters.
			if overlap > bestOverlap || (overlap == bestOverlap && best >= 0 && nodeDocs[p] < nodeDocs[best]) {
				best, bestOverlap = p, overlap
			}
		}
		if best < 0 {
			// Every node at capacity: place on the least-loaded one.
			for p := 0; p < n; p++ {
				if best < 0 || nodeDocs[p] < nodeDocs[best] {
					best = p
				}
			}
		}
		assign[best] = append(assign[best], g)
		nodeDocs[best] += docs
		for it := range vocab[gi] {
			nodeVocab[best][it] = struct{}{}
		}
	}
	for _, a := range assign {
		if len(a) == 0 {
			return d.SplitChronological(n)
		}
	}
	return d.assemble(assign)
}

// SplitByWork divides the database into n local databases of nearly equal
// estimated counting work, preserving chronological order. The cost model
// is the prefix sum of per-transaction estimates l + l(l-1)/2 where l is
// the token count — one CSR offset subtraction per transaction, O(1) each.
// The linear term is the scan cost every pass charges; the quadratic term
// is the candidate-pair population of pass 2, which dominates text mining
// at low minimum support (every within-document pair is a potential
// candidate) and makes long documents quadratically more expensive than
// their token count suggests. Equalizing this estimate tracks node clocks
// far better than equalizing document counts when document length is
// skewed by day. Like SplitChronological, each cut snaps to a day boundary
// within Len/(4n) transactions when one exists, cuts stay strictly
// increasing so every part is non-empty, and parts are CSR views into this
// database's backing, not copies.
func (d *DB) SplitByWork(n int) []*DB {
	offsets := d.offsets
	return d.SplitByWeight(n, func(i int) int64 {
		l := int64(offsets[i+1] - offsets[i])
		return l + l*(l-1)/2
	})
}

// SplitByWeight is SplitByWork under a caller-supplied non-negative
// per-transaction work estimate — e.g. a df-weighted token count built from
// ItemCounts, pricing each token by how likely it is to survive pass 1 and
// participate in candidate pairs (see WorkWeightsDF). Cuts fall where the
// weight prefix sum crosses each part's even share of the total, then snap
// to day boundaries exactly as SplitByWork does.
func (d *DB) SplitByWeight(n int, weight func(i int) int64) []*DB {
	if n <= 0 {
		panic(fmt.Sprintf("txdb: SplitByWeight(%d)", n))
	}
	if n == 1 {
		return []*DB{d}
	}
	prefix := make([]int64, d.Len()+1)
	for i := 0; i < d.Len(); i++ {
		w := weight(i)
		if w < 0 {
			panic(fmt.Sprintf("txdb: SplitByWeight negative weight %d at %d", w, i))
		}
		prefix[i+1] = prefix[i] + w
	}
	total := prefix[d.Len()]

	boundaries := []int{0}
	for i := 1; i < d.Len(); i++ {
		if d.days[i] != d.days[i-1] {
			boundaries = append(boundaries, i)
		}
	}
	boundaries = append(boundaries, d.Len())

	maxShift := d.Len() / (4 * n)
	cuts := make([]int, 0, n+1)
	cuts = append(cuts, 0)
	for p := 1; p < n; p++ {
		// The first index whose weight prefix reaches the part's even share
		// of the total work.
		want := total * int64(p) / int64(n)
		target := sort.Search(d.Len(), func(i int) bool { return prefix[i] >= want })
		cut := target
		if b := nearestBoundary(boundaries, target); abs(b-target) <= maxShift {
			cut = b
		}
		// Keep cuts strictly increasing so every part is non-empty.
		if min := cuts[len(cuts)-1] + 1; cut < min {
			cut = min
		}
		if max := d.Len() - (n - p); cut > max {
			cut = max
		}
		cuts = append(cuts, cut)
	}
	cuts = append(cuts, d.Len())

	parts := make([]*DB, n)
	for p := 0; p < n; p++ {
		parts[p] = d.view(cuts[p], cuts[p+1])
	}
	return parts
}

// WorkWeightsDF builds the df-weighted per-transaction work estimate for
// SplitByWeight: each token contributes its document frequency, so a
// transaction full of corpus-frequent words — the ones that survive pass 1
// and spawn candidate pairs — weighs more than one of the same length made
// of hapaxes. One ItemCounts scan plus one CSR pass.
func (d *DB) WorkWeightsDF() []int64 {
	df := d.ItemCounts()
	w := make([]int64, d.Len())
	for i := range w {
		var s int64
		for _, it := range d.ItemsOf(i) {
			s += int64(df[it])
		}
		w[i] = s
	}
	return w
}

// VocabOverlap measures the mean pairwise Jaccard similarity of the
// vocabularies of the given local databases — the (inverse) skew statistic
// the A6 ablation reports. Lower overlap means higher skew.
func VocabOverlap(parts []*DB) float64 {
	vocabs := make([]map[itemset.Item]struct{}, len(parts))
	for i, p := range parts {
		v := make(map[itemset.Item]struct{})
		p.Each(func(t *Transaction) {
			for _, it := range t.Items {
				v[it] = struct{}{}
			}
		})
		vocabs[i] = v
	}
	sum, pairs := 0.0, 0
	for i := 0; i < len(vocabs); i++ {
		for j := i + 1; j < len(vocabs); j++ {
			inter := 0
			for it := range vocabs[i] {
				if _, ok := vocabs[j][it]; ok {
					inter++
				}
			}
			union := len(vocabs[i]) + len(vocabs[j]) - inter
			if union > 0 {
				sum += float64(inter) / float64(union)
			}
			pairs++
		}
	}
	if pairs == 0 {
		return 0
	}
	return sum / float64(pairs)
}

package txdb

import (
	"testing"
	"testing/quick"

	"pmihp/internal/itemset"
)

// topical builds a corpus whose days alternate between two disjoint
// vocabulary clusters, so a skew-aware splitter has structure to exploit.
func topical(docsPerDay, days int) *DB {
	var txs []Transaction
	tid := TID(0)
	for d := 0; d < days; d++ {
		// Clusters alternate in pairs of days (A,A,B,B,…) so that neither
		// round-robin nor chronological splitting separates them, while a
		// vocabulary-aware splitter can.
		base := itemset.Item(0)
		if (d/2)%2 == 1 {
			base = 1000
		}
		for i := 0; i < docsPerDay; i++ {
			items := itemset.New(
				base+itemset.Item(i%17), base+itemset.Item((i*3+1)%17),
				base+itemset.Item((i*5+2)%17), base+itemset.Item((i*7+3)%17),
			)
			txs = append(txs, Transaction{TID: tid, Day: d, Items: items})
			tid++
		}
	}
	return New(txs, 2000)
}

func checkPartition(t *testing.T, db *DB, parts []*DB, n int) {
	t.Helper()
	if len(parts) != n {
		t.Fatalf("got %d parts", len(parts))
	}
	seen := map[TID]bool{}
	total := 0
	for _, p := range parts {
		if p.Len() == 0 {
			t.Fatal("empty part")
		}
		total += p.Len()
		last := -1
		p.Each(func(tx *Transaction) {
			if seen[tx.TID] {
				t.Fatalf("TID %d assigned twice", tx.TID)
			}
			seen[tx.TID] = true
			// Chronological order within each node.
			if int(tx.TID) <= last {
				t.Fatal("within-node order broken")
			}
			last = int(tx.TID)
		})
	}
	if total != db.Len() {
		t.Fatalf("parts cover %d of %d", total, db.Len())
	}
}

func TestSplitRoundRobinPartition(t *testing.T) {
	db := topical(20, 8)
	for _, n := range []int{2, 3, 4, 8} {
		checkPartition(t, db, db.SplitRoundRobin(n), n)
	}
	// Single node returns the database itself.
	if parts := db.SplitRoundRobin(1); len(parts) != 1 || parts[0].Len() != db.Len() {
		t.Fatal("1-node round robin wrong")
	}
}

func TestSplitSkewAwarePartition(t *testing.T) {
	db := topical(20, 8)
	for _, n := range []int{2, 4} {
		checkPartition(t, db, db.SplitSkewAware(n), n)
	}
}

func TestSkewAwareBeatsRoundRobinOnTopicalData(t *testing.T) {
	db := topical(25, 8)
	rr := VocabOverlap(db.SplitRoundRobin(2))
	sa := VocabOverlap(db.SplitSkewAware(2))
	if sa >= rr {
		t.Fatalf("skew-aware overlap %.3f not below round-robin %.3f", sa, rr)
	}
	// On this alternating corpus the two clusters are perfectly separable.
	if sa > 0.01 {
		t.Fatalf("skew-aware failed to separate clusters: overlap %.3f", sa)
	}
}

func TestSkewAwareBalance(t *testing.T) {
	db := topical(30, 12)
	parts := db.SplitSkewAware(4)
	for _, p := range parts {
		if p.Len() > db.Len()*6/(5*4)+1 {
			t.Fatalf("part of %d docs exceeds balance cap", p.Len())
		}
	}
}

func TestSplitFallbacksWhenFewDays(t *testing.T) {
	db := build(40, 2, 30) // 2 days, 4 nodes
	checkPartition(t, db, db.SplitSkewAware(4), 4)
	checkPartition(t, db, db.SplitRoundRobin(4), 4)
}

func TestVocabOverlapBounds(t *testing.T) {
	db := topical(10, 4)
	parts := db.SplitChronological(2)
	o := VocabOverlap(parts)
	if o < 0 || o > 1 {
		t.Fatalf("overlap %g out of range", o)
	}
	if VocabOverlap(parts[:1]) != 0 {
		t.Fatal("single part should have zero pairwise overlap")
	}
	// Identical halves overlap fully.
	same := []*DB{parts[0], parts[0]}
	if VocabOverlap(same) != 1 {
		t.Fatalf("identical parts overlap %g", VocabOverlap(same))
	}
}

// TestSplitPropertyQuick drives every splitter with randomized database
// shapes and checks the partition invariants (cover, disjoint, non-empty,
// ordered) under testing/quick.
func TestSplitPropertyQuick(t *testing.T) {
	f := func(docsRaw, daysRaw, nRaw, itemsRaw uint8) bool {
		docs := 8 + int(docsRaw)%200
		days := 1 + int(daysRaw)%20
		n := 1 + int(nRaw)%8
		if n > docs {
			n = docs
		}
		numItems := 10 + int(itemsRaw)%100
		db := build(docs, days, numItems)
		for _, split := range []func(int) []*DB{
			db.SplitChronological, db.SplitRoundRobin, db.SplitSkewAware,
		} {
			parts := split(n)
			if len(parts) != n {
				return false
			}
			seen := map[TID]bool{}
			total := 0
			for _, p := range parts {
				if p.Len() == 0 {
					return false
				}
				total += p.Len()
				ok := true
				p.Each(func(tx *Transaction) {
					if seen[tx.TID] {
						ok = false
					}
					seen[tx.TID] = true
				})
				if !ok {
					return false
				}
			}
			if total != docs {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

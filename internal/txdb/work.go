package txdb

import "pmihp/internal/itemset"

// Work is a mutable working copy of a database used during a multipass scan.
// Transaction trimming replaces a transaction's item list with a shorter
// one; transaction pruning deactivates the transaction entirely. The
// original DB is never modified, so a fresh Work can be taken per item
// partition (MIHP resets trimming state when it moves to the next F1
// partition, because earlier passes may have trimmed items that the next
// partition still needs).
type Work struct {
	tids   []TID
	items  []itemset.Itemset
	active []bool
	live   int
}

// NewWork returns a working copy of db. The per-transaction item slices
// alias the originals until first trimmed.
func NewWork(db *DB) *Work {
	w := &Work{
		tids:   make([]TID, db.Len()),
		items:  make([]itemset.Itemset, db.Len()),
		active: make([]bool, db.Len()),
		live:   db.Len(),
	}
	for i := 0; i < db.Len(); i++ {
		t := db.Tx(i)
		w.tids[i] = t.TID
		w.items[i] = t.Items
		w.active[i] = true
	}
	return w
}

// Len returns the total number of transactions, active or not.
func (w *Work) Len() int { return len(w.tids) }

// Live returns the number of still-active transactions.
func (w *Work) Live() int { return w.live }

// Each calls fn for every active transaction.
func (w *Work) Each(fn func(tid TID, items itemset.Itemset)) {
	for i := range w.tids {
		if w.active[i] {
			fn(w.tids[i], w.items[i])
		}
	}
}

// EachIndexed calls fn for every active transaction with its internal index,
// which Trim and Prune accept.
func (w *Work) EachIndexed(fn func(i int, tid TID, items itemset.Itemset)) {
	for i := range w.tids {
		if w.active[i] {
			fn(i, w.tids[i], w.items[i])
		}
	}
}

// EachIndexedRange is EachIndexed restricted to internal indexes in
// [lo, hi) — the iteration primitive of sharded counting scans, where each
// shard owns a contiguous index range and may Trim or PruneShard only its
// own transactions.
func (w *Work) EachIndexedRange(lo, hi int, fn func(i int, tid TID, items itemset.Itemset)) {
	for i := lo; i < hi; i++ {
		if w.active[i] {
			fn(i, w.tids[i], w.items[i])
		}
	}
}

// Trim replaces the item list of transaction i. The new list must be sorted;
// it may alias memory owned by the caller.
func (w *Work) Trim(i int, items itemset.Itemset) { w.items[i] = items }

// Prune deactivates transaction i; it is skipped by future Each calls.
func (w *Work) Prune(i int) {
	if w.active[i] {
		w.active[i] = false
		w.live--
	}
}

// PruneShard deactivates transaction i without touching the shared live
// counter, so concurrent shards owning disjoint index ranges can prune
// without synchronization. It reports whether the transaction was active;
// the caller folds the per-shard totals back with AdjustLive after the
// shards join.
func (w *Work) PruneShard(i int) bool {
	if w.active[i] {
		w.active[i] = false
		return true
	}
	return false
}

// AdjustLive applies a (negative) delta of pruned transactions accumulated
// by PruneShard calls.
func (w *Work) AdjustLive(delta int) { w.live += delta }

// TotalItems returns the summed length of all active transactions — the cost
// proxy for a counting scan over the working database.
func (w *Work) TotalItems() int {
	n := 0
	for i := range w.items {
		if w.active[i] {
			n += len(w.items[i])
		}
	}
	return n
}

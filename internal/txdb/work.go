package txdb

import "pmihp/internal/itemset"

// Work is a mutable working copy of a database used during a multipass scan.
// Transaction trimming replaces a transaction's item list with a shorter
// one; transaction pruning deactivates the transaction entirely. The
// original DB is never modified, so a Work can be Reset per item partition
// (MIHP resets trimming state when it moves to the next F1 partition,
// because earlier passes may have trimmed items that the next partition
// still needs).
//
// Like the DB it copies, Work is CSR-shaped: every transaction's (possibly
// trimmed) item list lives in one arena owned by the Work, addressed by
// per-transaction start/count arrays. Trimming compacts a transaction's
// live prefix in place within the arena, so multipass trimming allocates
// nothing and the scan stays a linear walk of one array.
type Work struct {
	db     *DB
	tids   []TID
	arena  []itemset.Item // owned backing; tx i's items = arena[start[i]:start[i]+count[i]]
	start  []uint32
	count  []uint32
	active []bool
	live   int
}

// NewWork returns a working copy of db, with every transaction's items
// copied into the Work's arena in one bulk copy.
func NewWork(db *DB) *Work {
	n := db.Len()
	w := &Work{
		db:     db,
		tids:   db.tids,
		arena:  make([]itemset.Item, 0, db.TotalItems()),
		start:  make([]uint32, n),
		count:  make([]uint32, n),
		active: make([]bool, n),
	}
	w.Reset()
	return w
}

// Reset restores the Work to a fresh copy of its source database: all
// transactions active and untrimmed. Allocates nothing after NewWork.
func (w *Work) Reset() {
	n := w.db.Len()
	w.arena = w.arena[:0]
	base := uint32(0)
	if n > 0 {
		base = w.db.offsets[0]
		w.arena = append(w.arena, w.db.items[base:w.db.offsets[n]]...)
	}
	for i := 0; i < n; i++ {
		w.start[i] = w.db.offsets[i] - base
		w.count[i] = w.db.offsets[i+1] - w.db.offsets[i]
		w.active[i] = true
	}
	w.live = n
}

// ResetFiltered restores the Work from its source database keeping only the
// items at or above first for which keep[item] is true, pruning transactions
// left with fewer than minItems kept items. It returns the total number of
// source items scanned (every transaction is read in full, exactly the cost
// a filtering pass over the original database charges). Allocates nothing
// after NewWork.
func (w *Work) ResetFiltered(first itemset.Item, keep []bool, minItems int) (scanned int64) {
	n := w.db.Len()
	src, offsets, _ := w.db.CSR()
	w.arena = w.arena[:0]
	w.live = n
	for i := 0; i < n; i++ {
		row := src[offsets[i]:offsets[i+1]]
		scanned += int64(len(row))
		s := uint32(len(w.arena))
		for _, it := range row {
			if it >= first && keep[it] {
				w.arena = append(w.arena, it)
			}
		}
		kept := uint32(len(w.arena)) - s
		if int(kept) < minItems {
			w.arena = w.arena[:s]
			w.start[i], w.count[i] = s, 0
			w.active[i] = false
			w.live--
			continue
		}
		w.start[i], w.count[i] = s, kept
		w.active[i] = true
	}
	return scanned
}

// Len returns the total number of transactions, active or not.
func (w *Work) Len() int { return len(w.tids) }

// Live returns the number of still-active transactions.
func (w *Work) Live() int { return w.live }

// ItemsOf returns the current item list of transaction i (aliasing the
// arena), regardless of its active flag.
func (w *Work) ItemsOf(i int) itemset.Itemset {
	return w.arena[w.start[i] : w.start[i]+w.count[i]]
}

// View is the raw-array view of a Work for direct shard iteration.
type WorkView struct {
	TIDs   []TID
	Active []bool
	Start  []uint32
	Count  []uint32
	Arena  []itemset.Item
}

// Items returns transaction i's current item list from the view.
func (v WorkView) Items(i int) itemset.Itemset {
	return v.Arena[v.Start[i] : v.Start[i]+v.Count[i]]
}

// View exposes the CSR arrays for the hot counting loops: each shard
// iterates its own contiguous index range directly, with no per-transaction
// callback. The arrays are owned by the Work; shards may only Trim or
// PruneShard transactions inside their own range. The view is invalidated
// by Reset/ResetFiltered.
func (w *Work) View() WorkView {
	return WorkView{TIDs: w.tids, Active: w.active, Start: w.start, Count: w.count, Arena: w.arena}
}

// Each calls fn for every active transaction.
func (w *Work) Each(fn func(tid TID, items itemset.Itemset)) {
	for i := range w.tids {
		if w.active[i] {
			fn(w.tids[i], w.ItemsOf(i))
		}
	}
}

// EachIndexed calls fn for every active transaction with its internal index,
// which Trim and Prune accept.
func (w *Work) EachIndexed(fn func(i int, tid TID, items itemset.Itemset)) {
	for i := range w.tids {
		if w.active[i] {
			fn(i, w.tids[i], w.ItemsOf(i))
		}
	}
}

// EachIndexedRange is EachIndexed restricted to internal indexes in
// [lo, hi) — the iteration primitive of sharded counting scans, where each
// shard owns a contiguous index range and may Trim or PruneShard only its
// own transactions.
func (w *Work) EachIndexedRange(lo, hi int, fn func(i int, tid TID, items itemset.Itemset)) {
	for i := lo; i < hi; i++ {
		if w.active[i] {
			fn(i, w.tids[i], w.ItemsOf(i))
		}
	}
}

// Trim replaces the item list of transaction i with items, which must be
// sorted and no longer than the current list. The items are copied into the
// transaction's existing arena range (a compaction in place when items
// already aliases that range, as the miners' trim kernels arrange).
func (w *Work) Trim(i int, items itemset.Itemset) {
	if n := uint32(len(items)); n <= w.count[i] {
		dst := w.arena[w.start[i] : w.start[i]+n]
		if len(items) > 0 && &dst[0] != &items[0] {
			copy(dst, items)
		}
		w.count[i] = n
		return
	}
	panic("txdb: Trim grew a transaction")
}

// Prune deactivates transaction i; it is skipped by future Each calls.
func (w *Work) Prune(i int) {
	if w.active[i] {
		w.active[i] = false
		w.live--
	}
}

// PruneShard deactivates transaction i without touching the shared live
// counter, so concurrent shards owning disjoint index ranges can prune
// without synchronization. It reports whether the transaction was active;
// the caller folds the per-shard totals back with AdjustLive after the
// shards join.
func (w *Work) PruneShard(i int) bool {
	if w.active[i] {
		w.active[i] = false
		return true
	}
	return false
}

// AdjustLive applies a (negative) delta of pruned transactions accumulated
// by PruneShard calls.
func (w *Work) AdjustLive(delta int) { w.live += delta }

// TotalItems returns the summed length of all active transactions — the cost
// proxy for a counting scan over the working database.
func (w *Work) TotalItems() int {
	n := 0
	for i := range w.count {
		if w.active[i] {
			n += int(w.count[i])
		}
	}
	return n
}

// MemBytes returns the resident size of the arrays the Work owns. The TID
// array is a view of the source database's and is charged there, not here.
func (w *Work) MemBytes() int64 {
	return int64(4*cap(w.arena)) + int64(4*len(w.start)) + int64(4*len(w.count)) +
		int64(len(w.active))
}

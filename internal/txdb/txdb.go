// Package txdb provides the in-memory transaction database used by every
// miner in this module. A transaction is a document reduced to the sorted
// set of its distinct items (word identifiers); the database preserves the
// chronological document order the paper relies on when distributing text
// to processing nodes.
//
// The store is laid out in CSR (compressed sparse row) form: one contiguous
// []Item backing array holds every transaction's items back to back, with a
// []uint32 offset array and parallel TID/Day arrays addressing it. Counting
// scans therefore stream one flat array instead of chasing a pointer per
// transaction, and node splits are views into the shared backing rather
// than per-transaction copies. The Tx/Each adapters preserve the original
// slice-of-transactions API for callers off the hot paths.
package txdb

import (
	"fmt"
	"math"

	"pmihp/internal/itemset"
)

// TID identifies a transaction. TIDs are globally unique across a corpus,
// including after the database is split across simulated nodes, so TID hash
// tables built at different nodes hash consistently.
type TID = uint32

// Transaction is one document: its global TID, the day it was published
// (used for chronological distribution), and its distinct items in
// increasing order.
type Transaction struct {
	TID   TID
	Day   int
	Items itemset.Itemset
}

// DB is an ordered collection of transactions in CSR layout. A DB produced
// by SplitChronological shares its items backing with the parent: offsets
// are absolute into the shared array, so a view costs three slice headers.
type DB struct {
	items   []itemset.Item // backing array; tx i owns items[offsets[i]:offsets[i+1]]
	offsets []uint32       // len = Len()+1, absolute indexes into items
	tids    []TID          // len = Len()
	days    []int32        // len = Len()
	// numItems is one greater than the largest item id that may occur, i.e.
	// the vocabulary size. Kept so per-item arrays can be sized without
	// scanning.
	numItems int
}

// New returns a DB over the given transactions, packing their item lists
// into one contiguous backing array. numItems is the vocabulary size (all
// item ids must be < numItems).
func New(txs []Transaction, numItems int) *DB {
	total := 0
	for i := range txs {
		total += len(txs[i].Items)
	}
	d := &DB{
		items:    make([]itemset.Item, 0, total),
		offsets:  make([]uint32, len(txs)+1),
		tids:     make([]TID, len(txs)),
		days:     make([]int32, len(txs)),
		numItems: numItems,
	}
	for i := range txs {
		d.items = append(d.items, txs[i].Items...)
		d.offsets[i+1] = uint32(len(d.items))
		d.tids[i] = txs[i].TID
		d.days[i] = int32(txs[i].Day)
	}
	return d
}

// FromCSR wraps pre-built CSR arrays as a DB without copying. offsets must
// have len(tids)+1 entries, ascending, with offsets[i] ≤ offsets[i+1] ≤
// len(items); days may be nil when the corpus has no day structure.
func FromCSR(items []itemset.Item, offsets []uint32, tids []TID, days []int32, numItems int) *DB {
	if len(offsets) != len(tids)+1 {
		panic(fmt.Sprintf("txdb: FromCSR offsets len %d for %d txs", len(offsets), len(tids)))
	}
	if days == nil {
		days = make([]int32, len(tids))
	}
	return &DB{items: items, offsets: offsets, tids: tids, days: days, numItems: numItems}
}

// Len returns the number of transactions.
func (d *DB) Len() int { return len(d.tids) }

// NumItems returns the vocabulary size the database was declared with.
func (d *DB) NumItems() int { return d.numItems }

// TotalItems returns the summed length of all transactions — one subtraction
// in the CSR layout.
func (d *DB) TotalItems() int {
	if len(d.tids) == 0 {
		return 0
	}
	return int(d.offsets[len(d.tids)] - d.offsets[0])
}

// ItemsOf returns the item list of the i-th transaction, aliasing the
// backing array.
func (d *DB) ItemsOf(i int) itemset.Itemset {
	return d.items[d.offsets[i]:d.offsets[i+1]]
}

// TIDOf returns the TID of the i-th transaction.
func (d *DB) TIDOf(i int) TID { return d.tids[i] }

// DayOf returns the day of the i-th transaction.
func (d *DB) DayOf(i int) int { return int(d.days[i]) }

// TIDSpan returns the size of the database's TID range, maxTID-minTID+1 —
// the bit width a flat posting bitmap over this database needs. TIDs ascend
// in database order (assigned sequentially at corpus build, preserved by
// every split view), so the span is one subtraction; an empty database spans
// zero.
func (d *DB) TIDSpan() int {
	if len(d.tids) == 0 {
		return 0
	}
	return int(d.tids[len(d.tids)-1]-d.tids[0]) + 1
}

// CSR exposes the raw CSR arrays: transaction i has TID tids[i] and items
// items[offsets[i]:offsets[i+1]]. The arrays are owned by the database and
// must not be mutated.
func (d *DB) CSR() (items []itemset.Item, offsets []uint32, tids []TID) {
	return d.items, d.offsets, d.tids
}

// MemBytes returns the resident size of the CSR arrays (a split view
// reports only its own slice of the offset/TID/day arrays plus the item
// range it addresses — the portion of the shared backing it keeps alive per
// node).
func (d *DB) MemBytes() int64 {
	return int64(4*d.TotalItems()) + int64(4*len(d.offsets)) +
		int64(4*len(d.tids)) + int64(4*len(d.days))
}

// Tx returns the i-th transaction as a value; its Items alias the backing
// array.
func (d *DB) Tx(i int) Transaction {
	return Transaction{TID: d.tids[i], Day: int(d.days[i]), Items: d.ItemsOf(i)}
}

// Each calls fn for every transaction in order. The *Transaction is only
// valid for the duration of the call (it is reused between iterations).
func (d *DB) Each(fn func(t *Transaction)) {
	var t Transaction
	for i := range d.tids {
		t = d.Tx(i)
		fn(&t)
	}
}

// MinSupCount converts a fractional minimum support level (e.g. 0.02 for 2%)
// into the absolute transaction count it denotes over this database,
// rounding up so that count/len >= frac always holds. A fraction that
// denotes fewer than one transaction is clamped to 1.
func (d *DB) MinSupCount(frac float64) int {
	n := int(frac*float64(d.Len()) + 0.999999)
	if n < 1 {
		n = 1
	}
	return n
}

// ItemCounts returns the number of transactions containing each item,
// indexed by item id. The scan streams the flat backing array.
func (d *DB) ItemCounts() []int {
	counts := make([]int, d.numItems)
	if d.Len() == 0 {
		return counts
	}
	for _, it := range d.items[d.offsets[0]:d.offsets[d.Len()]] {
		counts[it]++
	}
	return counts
}

// FrequentItems returns, in increasing item order, the items contained in at
// least minCount transactions.
func (d *DB) FrequentItems(minCount int) []itemset.Item {
	var out []itemset.Item
	for it, c := range d.ItemCounts() {
		if c >= minCount {
			out = append(out, itemset.Item(it))
		}
	}
	return out
}

// view returns the sub-database of transactions [lo, hi) sharing this
// database's backing arrays.
func (d *DB) view(lo, hi int) *DB {
	return &DB{
		items:    d.items,
		offsets:  d.offsets[lo : hi+1],
		tids:     d.tids[lo:hi],
		days:     d.days[lo:hi],
		numItems: d.numItems,
	}
}

// SplitChronological divides the database into n local databases of nearly
// equal document counts, preserving order — the paper's "sequentially
// distributed … by assigning the articles of 16 or 17 days to each node".
// Day boundaries are respected when possible: the split point is moved to
// the nearest day boundary that keeps every part non-empty; when the
// database has no day structure (all Day==0) the split is purely by count.
// Parts are CSR views into this database's backing, not copies.
func (d *DB) SplitChronological(n int) []*DB {
	if n <= 0 {
		panic(fmt.Sprintf("txdb: SplitChronological(%d)", n))
	}
	if n == 1 {
		return []*DB{d}
	}
	// Compute day boundaries (indexes where Day changes).
	boundaries := []int{0}
	for i := 1; i < d.Len(); i++ {
		if d.days[i] != d.days[i-1] {
			boundaries = append(boundaries, i)
		}
	}
	boundaries = append(boundaries, d.Len())

	// Even count cuts, snapped to a day boundary when one is close enough
	// that every part stays non-empty and near its even share.
	maxShift := d.Len() / (4 * n)
	cuts := make([]int, 0, n+1)
	cuts = append(cuts, 0)
	for p := 1; p < n; p++ {
		target := p * d.Len() / n
		cut := target
		if b := nearestBoundary(boundaries, target); abs(b-target) <= maxShift {
			cut = b
		}
		// Keep cuts strictly increasing so every part is non-empty.
		if min := cuts[len(cuts)-1] + 1; cut < min {
			cut = min
		}
		if max := d.Len() - (n - p); cut > max {
			cut = max
		}
		cuts = append(cuts, cut)
	}
	cuts = append(cuts, d.Len())

	parts := make([]*DB, n)
	for p := 0; p < n; p++ {
		parts[p] = d.view(cuts[p], cuts[p+1])
	}
	return parts
}

// nearestBoundary returns the element of boundaries closest to target.
// boundaries is sorted ascending and non-empty.
func nearestBoundary(boundaries []int, target int) int {
	lo, hi := 0, len(boundaries)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if boundaries[mid] < target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	best := boundaries[lo]
	if lo > 0 && target-boundaries[lo-1] < best-target {
		best = boundaries[lo-1]
	}
	return best
}

// Stats summarizes a database for reporting.
type Stats struct {
	Docs          int     // number of transactions
	Days          int     // number of distinct days
	UniqueItems   int     // items occurring at least once
	TotalItems    int     // sum of transaction lengths
	MeanLen       float64 // mean transaction length
	MedianDocsDay float64 // median documents per day

	// Density profile of the item-frequency distribution, relative to the
	// database's TID span — the quantities the hybrid posting layout keys on.
	TIDSpan    int     // maxTID-minTID+1
	MaxDF      int     // largest document frequency of any item
	MaxDensity float64 // MaxDF / TIDSpan
	// DenseItems counts items whose document frequency reaches the default
	// density threshold (mining.DefaultDenseThreshold of the span) — the
	// lists a default-configured poll counter stores as bitmaps.
	DenseItems int
}

// defaultDenseThreshold mirrors mining.DefaultDenseThreshold (txdb sits
// below mining in the dependency order, so the constant is restated here;
// a test in internal/mining pins the two together).
const defaultDenseThreshold = 1.0 / 16

// ComputeStats scans the database once and returns its summary.
func (d *DB) ComputeStats() Stats {
	var s Stats
	s.Docs = d.Len()
	dfs := make([]int, d.numItems)
	perDay := make(map[int]int)
	for i := 0; i < d.Len(); i++ {
		items := d.ItemsOf(i)
		s.TotalItems += len(items)
		perDay[int(d.days[i])]++
		for _, it := range items {
			dfs[it]++
		}
	}
	s.TIDSpan = d.TIDSpan()
	// The same rounding as mining.DenseCutoff, so DenseItems is exactly the
	// list count a default-configured poll counter encodes as bitmaps.
	cut := int(math.Ceil(defaultDenseThreshold * float64(s.TIDSpan)))
	if cut < 1 {
		cut = 1
	}
	for _, df := range dfs {
		if df > 0 {
			s.UniqueItems++
		}
		if df > s.MaxDF {
			s.MaxDF = df
		}
		if df >= cut {
			s.DenseItems++
		}
	}
	if s.TIDSpan > 0 {
		s.MaxDensity = float64(s.MaxDF) / float64(s.TIDSpan)
	}
	s.Days = len(perDay)
	if s.Docs > 0 {
		s.MeanLen = float64(s.TotalItems) / float64(s.Docs)
	}
	if len(perDay) > 0 {
		counts := make([]int, 0, len(perDay))
		for _, c := range perDay {
			counts = append(counts, c)
		}
		insertionSort(counts)
		mid := len(counts) / 2
		if len(counts)%2 == 1 {
			s.MedianDocsDay = float64(counts[mid])
		} else {
			s.MedianDocsDay = float64(counts[mid-1]+counts[mid]) / 2
		}
	}
	return s
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func insertionSort(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// Package txdb provides the in-memory transaction database used by every
// miner in this module. A transaction is a document reduced to the sorted
// set of its distinct items (word identifiers); the database preserves the
// chronological document order the paper relies on when distributing text
// to processing nodes.
package txdb

import (
	"fmt"

	"pmihp/internal/itemset"
)

// TID identifies a transaction. TIDs are globally unique across a corpus,
// including after the database is split across simulated nodes, so TID hash
// tables built at different nodes hash consistently.
type TID = uint32

// Transaction is one document: its global TID, the day it was published
// (used for chronological distribution), and its distinct items in
// increasing order.
type Transaction struct {
	TID   TID
	Day   int
	Items itemset.Itemset
}

// DB is an ordered collection of transactions.
type DB struct {
	txs []Transaction
	// numItems is one greater than the largest item id that may occur, i.e.
	// the vocabulary size. Kept so per-item arrays can be sized without
	// scanning.
	numItems int
}

// New returns a DB over the given transactions. numItems is the vocabulary
// size (all item ids must be < numItems). The slice is used directly, not
// copied.
func New(txs []Transaction, numItems int) *DB {
	return &DB{txs: txs, numItems: numItems}
}

// Len returns the number of transactions.
func (d *DB) Len() int { return len(d.txs) }

// NumItems returns the vocabulary size the database was declared with.
func (d *DB) NumItems() int { return d.numItems }

// Tx returns the i-th transaction.
func (d *DB) Tx(i int) *Transaction { return &d.txs[i] }

// Each calls fn for every transaction in order.
func (d *DB) Each(fn func(t *Transaction)) {
	for i := range d.txs {
		fn(&d.txs[i])
	}
}

// MinSupCount converts a fractional minimum support level (e.g. 0.02 for 2%)
// into the absolute transaction count it denotes over this database,
// rounding up so that count/len >= frac always holds. A fraction that
// denotes fewer than one transaction is clamped to 1.
func (d *DB) MinSupCount(frac float64) int {
	n := int(frac*float64(len(d.txs)) + 0.999999)
	if n < 1 {
		n = 1
	}
	return n
}

// ItemCounts returns the number of transactions containing each item,
// indexed by item id.
func (d *DB) ItemCounts() []int {
	counts := make([]int, d.numItems)
	for i := range d.txs {
		for _, it := range d.txs[i].Items {
			counts[it]++
		}
	}
	return counts
}

// FrequentItems returns, in increasing item order, the items contained in at
// least minCount transactions.
func (d *DB) FrequentItems(minCount int) []itemset.Item {
	var out []itemset.Item
	for it, c := range d.ItemCounts() {
		if c >= minCount {
			out = append(out, itemset.Item(it))
		}
	}
	return out
}

// SplitChronological divides the database into n local databases of nearly
// equal document counts, preserving order — the paper's "sequentially
// distributed … by assigning the articles of 16 or 17 days to each node".
// Day boundaries are respected when possible: the split point is moved to
// the nearest day boundary that keeps every part non-empty; when the
// database has no day structure (all Day==0) the split is purely by count.
func (d *DB) SplitChronological(n int) []*DB {
	if n <= 0 {
		panic(fmt.Sprintf("txdb: SplitChronological(%d)", n))
	}
	if n == 1 {
		return []*DB{d}
	}
	// Compute day boundaries (indexes where Day changes).
	boundaries := []int{0}
	for i := 1; i < len(d.txs); i++ {
		if d.txs[i].Day != d.txs[i-1].Day {
			boundaries = append(boundaries, i)
		}
	}
	boundaries = append(boundaries, len(d.txs))

	// Even count cuts, snapped to a day boundary when one is close enough
	// that every part stays non-empty and near its even share.
	maxShift := len(d.txs) / (4 * n)
	cuts := make([]int, 0, n+1)
	cuts = append(cuts, 0)
	for p := 1; p < n; p++ {
		target := p * len(d.txs) / n
		cut := target
		if b := nearestBoundary(boundaries, target); abs(b-target) <= maxShift {
			cut = b
		}
		// Keep cuts strictly increasing so every part is non-empty.
		if min := cuts[len(cuts)-1] + 1; cut < min {
			cut = min
		}
		if max := len(d.txs) - (n - p); cut > max {
			cut = max
		}
		cuts = append(cuts, cut)
	}
	cuts = append(cuts, len(d.txs))

	parts := make([]*DB, n)
	for p := 0; p < n; p++ {
		parts[p] = New(d.txs[cuts[p]:cuts[p+1]], d.numItems)
	}
	return parts
}

// nearestBoundary returns the element of boundaries closest to target.
// boundaries is sorted ascending and non-empty.
func nearestBoundary(boundaries []int, target int) int {
	lo, hi := 0, len(boundaries)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if boundaries[mid] < target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	best := boundaries[lo]
	if lo > 0 && target-boundaries[lo-1] < best-target {
		best = boundaries[lo-1]
	}
	return best
}

// Stats summarizes a database for reporting.
type Stats struct {
	Docs          int     // number of transactions
	Days          int     // number of distinct days
	UniqueItems   int     // items occurring at least once
	TotalItems    int     // sum of transaction lengths
	MeanLen       float64 // mean transaction length
	MedianDocsDay float64 // median documents per day
}

// ComputeStats scans the database once and returns its summary.
func (d *DB) ComputeStats() Stats {
	var s Stats
	s.Docs = len(d.txs)
	seen := make([]bool, d.numItems)
	perDay := make(map[int]int)
	for i := range d.txs {
		t := &d.txs[i]
		s.TotalItems += len(t.Items)
		perDay[t.Day]++
		for _, it := range t.Items {
			seen[it] = true
		}
	}
	for _, b := range seen {
		if b {
			s.UniqueItems++
		}
	}
	s.Days = len(perDay)
	if s.Docs > 0 {
		s.MeanLen = float64(s.TotalItems) / float64(s.Docs)
	}
	if len(perDay) > 0 {
		counts := make([]int, 0, len(perDay))
		for _, c := range perDay {
			counts = append(counts, c)
		}
		insertionSort(counts)
		mid := len(counts) / 2
		if len(counts)%2 == 1 {
			s.MedianDocsDay = float64(counts[mid])
		} else {
			s.MedianDocsDay = float64(counts[mid-1]+counts[mid]) / 2
		}
	}
	return s
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func insertionSort(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

package txdb

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"pmihp/internal/itemset"
)

// Binary transaction-database format, for round-tripping preprocessed
// databases without re-tokenizing: a fixed header followed by per-
// transaction records. All integers are little-endian uint32; items are
// delta-encoded within a transaction (they are strictly increasing).
//
//	magic "PMDB" | version | numItems | numTxs
//	per tx: tid | day | n | item deltas[n]

const (
	dbMagic   = "PMDB"
	dbVersion = 1
)

// Encode serializes the database.
func (d *DB) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(dbMagic); err != nil {
		return err
	}
	var u [4]byte
	put := func(v uint32) error {
		binary.LittleEndian.PutUint32(u[:], v)
		_, err := bw.Write(u[:])
		return err
	}
	if err := put(dbVersion); err != nil {
		return err
	}
	if err := put(uint32(d.numItems)); err != nil {
		return err
	}
	if err := put(uint32(d.Len())); err != nil {
		return err
	}
	for i := 0; i < d.Len(); i++ {
		if err := put(d.tids[i]); err != nil {
			return err
		}
		if err := put(uint32(d.days[i])); err != nil {
			return err
		}
		items := d.ItemsOf(i)
		if err := put(uint32(len(items))); err != nil {
			return err
		}
		prev := uint32(0)
		for _, it := range items {
			if err := put(it - prev); err != nil {
				return err
			}
			prev = it
		}
	}
	return bw.Flush()
}

// ReadDB deserializes a database written by Encode, building the CSR arrays
// directly (no per-transaction item allocations).
func ReadDB(r io.Reader) (*DB, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("txdb: reading magic: %w", err)
	}
	if string(magic) != dbMagic {
		return nil, fmt.Errorf("txdb: bad magic %q", magic)
	}
	var u [4]byte
	get := func() (uint32, error) {
		if _, err := io.ReadFull(br, u[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(u[:]), nil
	}
	version, err := get()
	if err != nil {
		return nil, err
	}
	if version != dbVersion {
		return nil, fmt.Errorf("txdb: unsupported version %d", version)
	}
	numItems, err := get()
	if err != nil {
		return nil, err
	}
	numTxs, err := get()
	if err != nil {
		return nil, err
	}
	d := &DB{
		offsets:  make([]uint32, 1, numTxs+1),
		tids:     make([]TID, 0, numTxs),
		days:     make([]int32, 0, numTxs),
		numItems: int(numItems),
	}
	for i := 0; i < int(numTxs); i++ {
		tid, err := get()
		if err != nil {
			return nil, fmt.Errorf("txdb: tx %d: %w", i, err)
		}
		day, err := get()
		if err != nil {
			return nil, fmt.Errorf("txdb: tx %d: %w", i, err)
		}
		n, err := get()
		if err != nil {
			return nil, fmt.Errorf("txdb: tx %d: %w", i, err)
		}
		start := len(d.items)
		prev := uint32(0)
		for j := 0; j < int(n); j++ {
			delta, err := get()
			if err != nil {
				return nil, fmt.Errorf("txdb: tx %d item %d: %w", i, j, err)
			}
			prev += delta
			if prev >= numItems {
				return nil, fmt.Errorf("txdb: tx %d item %d: id %d out of range", i, j, prev)
			}
			d.items = append(d.items, prev)
		}
		if !itemset.Itemset(d.items[start:]).Valid() {
			return nil, fmt.Errorf("txdb: tx %d: items not strictly increasing", i)
		}
		d.offsets = append(d.offsets, uint32(len(d.items)))
		d.tids = append(d.tids, tid)
		d.days = append(d.days, int32(day))
	}
	return d, nil
}

// Save writes the database to a file.
func (d *DB) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := d.Encode(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load reads a database from a file written by Save.
func Load(path string) (*DB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadDB(f)
}

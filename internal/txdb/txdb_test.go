package txdb

import (
	"testing"

	"pmihp/internal/itemset"
)

// build constructs a DB of docs transactions with the given day spans and a
// simple deterministic item pattern.
func build(docs, days, numItems int) *DB {
	txs := make([]Transaction, docs)
	for i := range txs {
		day := 0
		if docs > 0 && days > 0 {
			day = i * days / docs
		}
		items := itemset.New(
			itemset.Item(i%numItems),
			itemset.Item((i*7+1)%numItems),
			itemset.Item((i*13+2)%numItems),
		)
		txs[i] = Transaction{TID: TID(i), Day: day, Items: items}
	}
	return New(txs, numItems)
}

func TestMinSupCount(t *testing.T) {
	db := build(200, 8, 50)
	cases := []struct {
		frac float64
		want int
	}{
		{0.05, 10},
		{0.02, 4},
		{0.001, 1}, // clamps to 1
		{0.015, 3},
	}
	for _, c := range cases {
		if got := db.MinSupCount(c.frac); got != c.want {
			t.Errorf("MinSupCount(%g) = %d, want %d", c.frac, got, c.want)
		}
	}
}

func TestItemCountsAndFrequentItems(t *testing.T) {
	txs := []Transaction{
		{TID: 0, Items: itemset.New(1, 2)},
		{TID: 1, Items: itemset.New(1, 3)},
		{TID: 2, Items: itemset.New(1, 2, 3)},
	}
	db := New(txs, 5)
	counts := db.ItemCounts()
	want := []int{0, 3, 2, 2, 0}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("counts[%d] = %d, want %d", i, counts[i], want[i])
		}
	}
	freq := db.FrequentItems(2)
	if len(freq) != 3 || freq[0] != 1 || freq[1] != 2 || freq[2] != 3 {
		t.Fatalf("FrequentItems(2) = %v", freq)
	}
}

func TestSplitChronologicalPartsCoverAll(t *testing.T) {
	for _, docs := range []int{8, 99, 100, 1427} {
		for _, n := range []int{1, 2, 3, 4, 8} {
			if n > docs {
				continue
			}
			db := build(docs, 8, 40)
			parts := db.SplitChronological(n)
			if len(parts) != n {
				t.Fatalf("docs=%d n=%d: got %d parts", docs, n, len(parts))
			}
			total := 0
			for _, p := range parts {
				if p.Len() == 0 {
					t.Fatalf("docs=%d n=%d: empty part", docs, n)
				}
				total += p.Len()
			}
			if total != docs {
				t.Fatalf("docs=%d n=%d: parts cover %d", docs, n, total)
			}
			// Chronological: TIDs strictly increasing across concatenation.
			last := -1
			for _, p := range parts {
				p.Each(func(tx *Transaction) {
					if int(tx.TID) <= last {
						t.Fatalf("docs=%d n=%d: TID order broken", docs, n)
					}
					last = int(tx.TID)
				})
			}
		}
	}
}

func TestSplitChronologicalBalance(t *testing.T) {
	db := build(1427, 8, 60) // the paper's corpus B shape
	parts := db.SplitChronological(8)
	for _, p := range parts {
		if p.Len() < 1427/8-1427/16 || p.Len() > 1427/8+1427/16 {
			t.Fatalf("unbalanced part: %d docs", p.Len())
		}
	}
}

func TestSplitNoDayStructure(t *testing.T) {
	db := build(100, 1, 40) // every transaction on day 0
	parts := db.SplitChronological(4)
	for _, p := range parts {
		if p.Len() != 25 {
			t.Fatalf("day-free split uneven: %d", p.Len())
		}
	}
}

func TestSplitPanicsOnZeroNodes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	build(10, 2, 5).SplitChronological(0)
}

func TestComputeStats(t *testing.T) {
	txs := []Transaction{
		{TID: 0, Day: 0, Items: itemset.New(1, 2)},
		{TID: 1, Day: 0, Items: itemset.New(2, 3, 4)},
		{TID: 2, Day: 1, Items: itemset.New(2)},
	}
	db := New(txs, 6)
	st := db.ComputeStats()
	if st.Docs != 3 || st.Days != 2 || st.UniqueItems != 4 || st.TotalItems != 6 {
		t.Fatalf("stats = %+v", st)
	}
	if st.MeanLen != 2.0 {
		t.Fatalf("MeanLen = %g", st.MeanLen)
	}
	if st.MedianDocsDay != 1.5 {
		t.Fatalf("MedianDocsDay = %g", st.MedianDocsDay)
	}
}

func TestWorkTrimAndPrune(t *testing.T) {
	db := build(10, 2, 30)
	w := NewWork(db)
	if w.Live() != 10 || w.Len() != 10 {
		t.Fatalf("Live/Len = %d/%d", w.Live(), w.Len())
	}
	before := w.TotalItems()

	w.EachIndexed(func(i int, _ TID, items itemset.Itemset) {
		if i%2 == 0 {
			w.Prune(i)
		} else {
			w.Trim(i, items[:1])
		}
	})
	if w.Live() != 5 {
		t.Fatalf("Live after prune = %d", w.Live())
	}
	if w.TotalItems() != 5 {
		t.Fatalf("TotalItems after trim = %d (before %d)", w.TotalItems(), before)
	}
	seen := 0
	w.Each(func(_ TID, items itemset.Itemset) {
		seen++
		if len(items) != 1 {
			t.Fatalf("trimmed tx has %d items", len(items))
		}
	})
	if seen != 5 {
		t.Fatalf("Each visited %d", seen)
	}
	// Double prune is idempotent.
	w.EachIndexed(func(i int, _ TID, _ itemset.Itemset) { w.Prune(i); w.Prune(i) })
	if w.Live() != 0 {
		t.Fatalf("Live after full prune = %d", w.Live())
	}
	// The source database is untouched.
	if got := db.ComputeStats().TotalItems; got != before {
		t.Fatalf("source db mutated: %d != %d", got, before)
	}
}

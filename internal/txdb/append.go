package txdb

import "fmt"

// AppendDB is the growable form of the CSR transaction store: a live
// document stream appends batches at the tail while zero-copy views over
// any committed prefix or day suffix keep serving miners. It preserves the
// two ordering invariants every consumer of a DB relies on:
//
//   - TIDs ascend in database order (assigned sequentially by Append, so
//     TIDSpan and the posting bitmaps stay one subtraction);
//   - days are non-decreasing, making every day a contiguous run of
//     transactions ("day-group contiguity") — the structure the
//     chronological splitters, the skew partitioners, and the sliding
//     window of internal/streammine all index by.
//
// Views returned by View/SinceDay alias the arrays committed at call time;
// a later Append that grows the backing never mutates them (append-only
// writes land past every existing view's length, and reallocation leaves
// old views on the old backing). Evicting a day from a window does not
// reclaim its storage — the store is an append log; compaction, when a
// deployment needs it, is a rebuild through New on a SinceDay view.
type AppendDB struct {
	db      DB
	lastDay int32
	tidBase TID
}

// NewAppend returns an empty appendable store. numItems is the initial
// vocabulary size; Append grows it automatically when a batch carries a
// larger item id (a live stream coins new words).
func NewAppend(numItems int) *AppendDB {
	a := &AppendDB{}
	a.db.numItems = numItems
	a.db.offsets = make([]uint32, 1)
	return a
}

// NewAppendAt is NewAppend with the TID sequence starting at first instead
// of 0. A resumed stream checkpoint restores only its window's
// transactions; starting the sequence at the window's original first TID
// keeps every restored transaction's identity — and therefore every view —
// identical to the uninterrupted run's.
func NewAppendAt(numItems int, first TID) *AppendDB {
	a := NewAppend(numItems)
	a.tidBase = first
	return a
}

// Len returns the number of committed transactions.
func (a *AppendDB) Len() int { return a.db.Len() }

// NumItems returns the current vocabulary size (grows with appends).
func (a *AppendDB) NumItems() int { return a.db.numItems }

// LastDay returns the day of the most recent transaction, or ok=false for
// an empty store.
func (a *AppendDB) LastDay() (day int, ok bool) {
	if a.db.Len() == 0 {
		return 0, false
	}
	return int(a.lastDay), true
}

// NextTID returns the TID the next appended transaction will receive.
func (a *AppendDB) NextTID() TID { return a.tidBase + TID(a.db.Len()) }

// Append commits a batch of transactions to the tail of the store,
// assigning TIDs sequentially (the TID field of the input is ignored; the
// store is the TID authority, exactly like text.ToDB at corpus build).
// The batch's days must be non-decreasing and its first day must not
// precede the store's last day, so day-group contiguity survives every
// append; a violating batch is rejected whole — no partial commit.
// Item ids beyond the current vocabulary grow NumItems.
func (a *AppendDB) Append(txs []Transaction) error {
	if len(txs) == 0 {
		return nil
	}
	day := a.lastDay
	if a.db.Len() == 0 {
		day = int32(txs[0].Day)
	}
	maxItem := -1
	for i := range txs {
		d := int32(txs[i].Day)
		if d < day {
			return fmt.Errorf("txdb: Append out of order: tx %d has day %d after day %d", i, d, day)
		}
		day = d
		if !txs[i].Items.Valid() {
			return fmt.Errorf("txdb: Append tx %d items not strictly increasing", i)
		}
		if n := len(txs[i].Items); n > 0 && int(txs[i].Items[n-1]) > maxItem {
			maxItem = int(txs[i].Items[n-1])
		}
	}
	for i := range txs {
		a.db.items = append(a.db.items, txs[i].Items...)
		a.db.offsets = append(a.db.offsets, uint32(len(a.db.items)))
		a.db.tids = append(a.db.tids, a.tidBase+TID(len(a.db.tids)))
		a.db.days = append(a.db.days, int32(txs[i].Day))
	}
	a.lastDay = day
	if maxItem >= a.db.numItems {
		a.db.numItems = maxItem + 1
	}
	return nil
}

// View returns a zero-copy DB over every committed transaction. The view
// is a stable snapshot: later appends never change what it addresses.
func (a *AppendDB) View() *DB {
	n := a.db.Len()
	return &DB{
		items:    a.db.items[:a.db.offsets[n]],
		offsets:  a.db.offsets[:n+1],
		tids:     a.db.tids[:n],
		days:     a.db.days[:n],
		numItems: a.db.numItems,
	}
}

// SinceDay returns a zero-copy view of the transactions with Day >= day —
// the sliding window's working set. Day-group contiguity makes it one
// binary search for the first qualifying transaction.
func (a *AppendDB) SinceDay(day int) *DB {
	lo := a.searchDay(int32(day))
	n := a.db.Len()
	return &DB{
		items:    a.db.items[:a.db.offsets[n]],
		offsets:  a.db.offsets[lo : n+1],
		tids:     a.db.tids[lo:n],
		days:     a.db.days[lo:n],
		numItems: a.db.numItems,
	}
}

// DayBounds returns the transaction index range [lo, hi) of the given day
// (lo == hi when the day has no transactions). Contiguity makes the run
// unique.
func (a *AppendDB) DayBounds(day int) (lo, hi int) {
	return a.searchDay(int32(day)), a.searchDay(int32(day) + 1)
}

// searchDay returns the index of the first transaction with Day >= day.
func (a *AppendDB) searchDay(day int32) int {
	lo, hi := 0, a.db.Len()
	for lo < hi {
		mid := (lo + hi) / 2
		if a.db.days[mid] < day {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Days returns the distinct committed days in ascending order.
func (a *AppendDB) Days() []int {
	var out []int
	for i := 0; i < a.db.Len(); i++ {
		d := int(a.db.days[i])
		if len(out) == 0 || out[len(out)-1] != d {
			out = append(out, d)
		}
	}
	return out
}

// MemBytes reports the resident size of the committed arrays, by the same
// accounting as DB.MemBytes.
func (a *AppendDB) MemBytes() int64 { return a.db.MemBytes() }

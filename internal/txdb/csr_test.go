package txdb

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pmihp/internal/itemset"
)

// randomTxs generates a database shape from a seed: transaction lengths,
// item ids, and day runs all vary, including empty transactions.
func randomTxs(seed int64, docs, numItems int) []Transaction {
	rng := rand.New(rand.NewSource(seed))
	txs := make([]Transaction, docs)
	day := 0
	for i := range txs {
		if rng.Intn(4) == 0 {
			day++
		}
		n := rng.Intn(8) // empty transactions are legal
		raw := make([]uint32, n)
		for j := range raw {
			raw[j] = uint32(rng.Intn(numItems))
		}
		txs[i] = Transaction{TID: TID(i), Day: day, Items: itemset.New(raw...)}
	}
	return txs
}

// TestCSRRoundTripQuick: packing transactions into the CSR layout and
// reading them back through every accessor is lossless, for randomized
// database shapes under testing/quick.
func TestCSRRoundTripQuick(t *testing.T) {
	f := func(seed int64, docsRaw, itemsRaw uint8) bool {
		docs := int(docsRaw) % 60
		numItems := 1 + int(itemsRaw)%50
		txs := randomTxs(seed, docs, numItems)
		db := New(txs, numItems)

		if db.Len() != len(txs) || db.NumItems() != numItems {
			return false
		}
		total := 0
		wantCounts := make([]int, numItems)
		for i, tx := range txs {
			total += len(tx.Items)
			for _, it := range tx.Items {
				wantCounts[it]++
			}
			if db.TIDOf(i) != tx.TID || db.DayOf(i) != tx.Day {
				return false
			}
			got := db.ItemsOf(i)
			if len(got) != len(tx.Items) {
				return false
			}
			for j := range got {
				if got[j] != tx.Items[j] {
					return false
				}
			}
		}
		if db.TotalItems() != total {
			return false
		}
		gotCounts := db.ItemCounts()
		for it := range wantCounts {
			if gotCounts[it] != wantCounts[it] {
				return false
			}
		}
		// Each must visit the same transactions in the same order.
		i := 0
		ok := true
		db.Each(func(tx *Transaction) {
			if tx.TID != txs[i].TID || len(tx.Items) != len(txs[i].Items) {
				ok = false
			}
			i++
		})
		return ok && i == len(txs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestCSRViewsShareBacking: split views must alias the parent's backing
// array (the layout's zero-copy promise) and report only their own share
// of it in MemBytes, with the shares summing back to the parent's total.
func TestCSRViewsShareBacking(t *testing.T) {
	db := build(120, 10, 40)
	parts := db.SplitChronological(4)

	items, _, _ := db.CSR()
	var held int64
	off := 0
	for _, p := range parts {
		pitems, poffsets, ptids := p.CSR()
		if &pitems[0] != &items[0] {
			t.Fatal("split view copied the items backing")
		}
		if len(poffsets) != p.Len()+1 || len(ptids) != p.Len() {
			t.Fatalf("view CSR arrays mis-sized: %d offsets, %d tids for %d txs",
				len(poffsets), len(ptids), p.Len())
		}
		// Offsets are absolute into the shared backing: the view's items
		// must be readable through them without translation.
		for i := 0; i < p.Len(); i++ {
			want := db.ItemsOf(off + i)
			got := p.ItemsOf(i)
			if len(got) != len(want) {
				t.Fatalf("tx %d: %d items via view, %d via parent", off+i, len(got), len(want))
			}
			for j := range got {
				if got[j] != want[j] {
					t.Fatalf("tx %d item %d: %d vs %d", off+i, j, got[j], want[j])
				}
			}
		}
		off += p.Len()
		held += p.MemBytes()
	}
	// Per-view MemBytes counts the addressed item range, so the shares of a
	// full cover sum to the parent's item bytes plus the per-part overhead
	// of the offset/TID/day slices (one extra offset entry per part).
	wantItems := int64(4 * db.TotalItems())
	gotOverhead := held - wantItems - int64(12*db.Len())
	if wantOverhead := int64(4 * len(parts)); gotOverhead != wantOverhead {
		t.Fatalf("view MemBytes sum %d: overhead %d, want %d", held, gotOverhead, wantOverhead)
	}
}

// TestFromCSRRoundTrip: wrapping raw CSR arrays and reading them back via
// CSR() is the identity, and the wrapped database serves the same
// transactions as one built through New.
func TestFromCSRRoundTrip(t *testing.T) {
	txs := randomTxs(7, 30, 25)
	want := New(txs, 25)

	items, offsets, tids := want.CSR()
	days := make([]int32, len(txs))
	for i := range txs {
		days[i] = int32(txs[i].Day)
	}
	got := FromCSR(items, offsets, tids, days, 25)

	if got.Len() != want.Len() || got.TotalItems() != want.TotalItems() {
		t.Fatalf("FromCSR: %d txs/%d items, want %d/%d",
			got.Len(), got.TotalItems(), want.Len(), want.TotalItems())
	}
	for i := 0; i < want.Len(); i++ {
		if got.TIDOf(i) != want.TIDOf(i) || got.DayOf(i) != want.DayOf(i) {
			t.Fatalf("tx %d header mismatch", i)
		}
		a, b := got.ItemsOf(i), want.ItemsOf(i)
		if len(a) != len(b) {
			t.Fatalf("tx %d length mismatch", i)
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("tx %d item %d mismatch", i, j)
			}
		}
	}
	gi, go_, gt := got.CSR()
	if &gi[0] != &items[0] || &go_[0] != &offsets[0] || &gt[0] != &tids[0] {
		t.Fatal("FromCSR copied its inputs")
	}
}

// TestFromCSRRejectsMismatch: the offsets/tids length invariant is checked.
func TestFromCSRRejectsMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FromCSR accepted mismatched offsets")
		}
	}()
	FromCSR(nil, []uint32{0, 0}, nil, nil, 1)
}

package txdb

import (
	"bytes"
	"path/filepath"
	"testing"

	"pmihp/internal/itemset"
)

func TestDBRoundTrip(t *testing.T) {
	db := build(57, 5, 300)
	var buf bytes.Buffer
	if err := db.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDB(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != db.Len() || got.NumItems() != db.NumItems() {
		t.Fatalf("shape: %d/%d vs %d/%d", got.Len(), got.NumItems(), db.Len(), db.NumItems())
	}
	for i := 0; i < db.Len(); i++ {
		a, b := db.Tx(i), got.Tx(i)
		if a.TID != b.TID || a.Day != b.Day || !a.Items.Equal(b.Items) {
			t.Fatalf("tx %d differs: %+v vs %+v", i, a, b)
		}
	}
}

func TestDBRoundTripEmptyAndEdge(t *testing.T) {
	for _, db := range []*DB{
		New(nil, 10),
		New([]Transaction{{TID: 0, Items: itemset.Itemset{}}}, 1),
		New([]Transaction{{TID: 7, Day: 3, Items: itemset.New(0, 9)}}, 10),
	} {
		var buf bytes.Buffer
		if err := db.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := ReadDB(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.Len() != db.Len() {
			t.Fatalf("len %d vs %d", got.Len(), db.Len())
		}
	}
}

func TestReadDBRejectsCorruption(t *testing.T) {
	db := build(10, 2, 50)
	var buf bytes.Buffer
	if err := db.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	cases := map[string][]byte{
		"empty":       {},
		"bad magic":   append([]byte("XXXX"), good[4:]...),
		"bad version": append(append([]byte{}, good[:4]...), append([]byte{99, 0, 0, 0}, good[8:]...)...),
		"truncated":   good[:len(good)-3],
	}
	for name, data := range cases {
		if _, err := ReadDB(bytes.NewReader(data)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestSaveLoad(t *testing.T) {
	db := build(23, 4, 100)
	path := filepath.Join(t.TempDir(), "db.pmdb")
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != db.Len() {
		t.Fatalf("Load lost transactions: %d vs %d", got.Len(), db.Len())
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("missing file accepted")
	}
}

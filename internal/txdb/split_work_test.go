package txdb

import (
	"testing"
	"testing/quick"

	"pmihp/internal/itemset"
)

// lengthSkewed builds a corpus whose early days carry long documents and
// late days short ones — the straggler regime SplitByWork exists for: an
// equal-document-count split gives the first node several times the tokens
// of the last.
func lengthSkewed(docs, days int) *DB {
	txs := make([]Transaction, docs)
	for i := range txs {
		day := i * days / docs
		length := 3 + 5*(days-day)
		raw := make([]uint32, length)
		for j := range raw {
			raw[j] = uint32((i*7 + j*13 + 1) % 97)
		}
		txs[i] = Transaction{TID: TID(i), Day: day, Items: itemset.New(raw...)}
	}
	return New(txs, 100)
}

// workEstimate sums the splitter's per-transaction cost model, l + l(l-1)/2,
// over a part — the quantity SplitByWork equalizes.
func workEstimate(p *DB) int64 {
	var w int64
	for i := 0; i < p.Len(); i++ {
		l := int64(len(p.ItemsOf(i)))
		w += l + l*(l-1)/2
	}
	return w
}

func workSpread(parts []*DB) (min, max int64) {
	min, max = workEstimate(parts[0]), workEstimate(parts[0])
	for _, p := range parts[1:] {
		if n := workEstimate(p); n < min {
			min = n
		} else if n > max {
			max = n
		}
	}
	return min, max
}

func TestSplitByWorkPartition(t *testing.T) {
	db := lengthSkewed(200, 10)
	for _, n := range []int{2, 3, 4, 8} {
		checkPartition(t, db, db.SplitByWork(n), n)
	}
	if parts := db.SplitByWork(1); len(parts) != 1 || parts[0].Len() != db.Len() {
		t.Fatal("1-node work split wrong")
	}
}

// TestSplitByWorkTilesExactly pins the strongest form of the partition
// property: the parts are contiguous chronological views that tile the
// database — every transaction appears exactly once, in order, with its
// exact item list, and the token totals sum to the database's.
func TestSplitByWorkTilesExactly(t *testing.T) {
	db := lengthSkewed(157, 9)
	for _, n := range []int{2, 5, 8} {
		parts := db.SplitByWork(n)
		pos, tokens := 0, 0
		for _, p := range parts {
			tokens += p.TotalItems()
			for i := 0; i < p.Len(); i++ {
				if p.TIDOf(i) != db.TIDOf(pos) {
					t.Fatalf("n=%d: transaction %d is TID %d, database has %d",
						n, pos, p.TIDOf(i), db.TIDOf(pos))
				}
				if p.DayOf(i) != db.DayOf(pos) {
					t.Fatalf("n=%d: day mismatch at %d", n, pos)
				}
				if !p.ItemsOf(i).Equal(db.ItemsOf(pos)) {
					t.Fatalf("n=%d: item list mismatch at %d", n, pos)
				}
				pos++
			}
		}
		if pos != db.Len() || tokens != db.TotalItems() {
			t.Fatalf("n=%d: parts tile %d docs / %d tokens, database has %d / %d",
				n, pos, tokens, db.Len(), db.TotalItems())
		}
	}
}

// TestSplitByWorkBalancesWork: on a length-skewed corpus the work split
// must equalize the estimated counting work far better than the
// equal-document-count split — that is its reason to exist.
func TestSplitByWorkBalancesWork(t *testing.T) {
	db := lengthSkewed(240, 12)
	for _, n := range []int{4, 8} {
		cMin, cMax := workSpread(db.SplitChronological(n))
		wMin, wMax := workSpread(db.SplitByWork(n))
		cRatio := float64(cMax) / float64(cMin)
		wRatio := float64(wMax) / float64(wMin)
		if wRatio >= cRatio {
			t.Fatalf("n=%d: work split imbalance %.2f not below count split %.2f",
				n, wRatio, cRatio)
		}
	}

	// With a single day there are no boundaries to snap to, so the only
	// residual imbalance is one transaction of prefix-sum rounding.
	txs := make([]Transaction, 240)
	for i := range txs {
		length := 3 + 5*(12-i*12/240)
		raw := make([]uint32, length)
		for j := range raw {
			raw[j] = uint32((i*7 + j*13 + 1) % 97)
		}
		txs[i] = Transaction{TID: TID(i), Day: 0, Items: itemset.New(raw...)}
	}
	flat := New(txs, 100)
	for _, n := range []int{4, 8} {
		wMin, wMax := workSpread(flat.SplitByWork(n))
		if r := float64(wMax) / float64(wMin); r > 1.2 {
			t.Fatalf("n=%d: snap-free work split imbalance %.2f too high", n, r)
		}
	}
}

func TestSplitByWeightDF(t *testing.T) {
	db := lengthSkewed(120, 8)
	w := db.WorkWeightsDF()
	if len(w) != db.Len() {
		t.Fatalf("WorkWeightsDF returned %d weights for %d transactions", len(w), db.Len())
	}
	for i, v := range w {
		if v <= 0 {
			t.Fatalf("weight %d at %d: every transaction has items with df >= 1", v, i)
		}
	}
	parts := db.SplitByWeight(4, func(i int) int64 { return w[i] })
	checkPartition(t, db, parts, 4)
}

func TestSplitByWeightNegativePanics(t *testing.T) {
	db := lengthSkewed(20, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("negative weight did not panic")
		}
	}()
	db.SplitByWeight(2, func(i int) int64 { return -1 })
}

func TestSplitByWeightBadNodesPanics(t *testing.T) {
	db := lengthSkewed(20, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("SplitByWeight(0) did not panic")
		}
	}()
	db.SplitByWeight(0, func(i int) int64 { return 1 })
}

// TestSplitByWorkPropertyQuick drives SplitByWork with randomized database
// shapes and checks the partition invariants (cover, disjoint, non-empty,
// ordered, exact token tiling) under testing/quick — including degenerate
// weight distributions where a handful of transactions carry all the work.
func TestSplitByWorkPropertyQuick(t *testing.T) {
	f := func(docsRaw, daysRaw, nRaw, itemsRaw uint8) bool {
		docs := 8 + int(docsRaw)%200
		days := 1 + int(daysRaw)%20
		n := 1 + int(nRaw)%8
		if n > docs {
			n = docs
		}
		numItems := 10 + int(itemsRaw)%100
		db := build(docs, days, numItems)
		for _, split := range []func(int) []*DB{
			db.SplitByWork,
			func(n int) []*DB {
				// Spiky weights: every 5th transaction carries all the work.
				return db.SplitByWeight(n, func(i int) int64 {
					if i%5 == 0 {
						return 100
					}
					return 0
				})
			},
		} {
			parts := split(n)
			if len(parts) != n {
				return false
			}
			seen := map[TID]bool{}
			total, tokens := 0, 0
			for _, p := range parts {
				if p.Len() == 0 {
					return false
				}
				total += p.Len()
				tokens += p.TotalItems()
				ok := true
				last := -1
				p.Each(func(tx *Transaction) {
					if seen[tx.TID] || int(tx.TID) <= last {
						ok = false
					}
					seen[tx.TID] = true
					last = int(tx.TID)
				})
				if !ok {
					return false
				}
			}
			if total != docs || tokens != db.TotalItems() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

package txdb

import (
	"math/rand"
	"testing"

	"pmihp/internal/itemset"
)

// checkDayInvariants verifies the two ordering invariants every consumer
// of a DB relies on: days non-decreasing (hence day-group contiguous) and
// TIDs sequential.
func checkDayInvariants(t *testing.T, a *AppendDB, firstTID TID) {
	t.Helper()
	v := a.View()
	for i := 1; i < v.Len(); i++ {
		if v.DayOf(i) < v.DayOf(i-1) {
			t.Fatalf("tx %d day %d after day %d", i, v.DayOf(i), v.DayOf(i-1))
		}
	}
	for i := 0; i < v.Len(); i++ {
		if v.TIDOf(i) != firstTID+TID(i) {
			t.Fatalf("tx %d has TID %d, want %d", i, v.TIDOf(i), firstTID+TID(i))
		}
	}
	// Day-group contiguity, stated directly: every day's transactions form
	// exactly one run, so the number of day changes equals the number of
	// distinct days minus one.
	changes := 0
	seen := map[int]bool{}
	for i := 0; i < v.Len(); i++ {
		if i > 0 && v.DayOf(i) != v.DayOf(i-1) {
			changes++
		}
		seen[v.DayOf(i)] = true
	}
	if v.Len() > 0 && changes != len(seen)-1 {
		t.Fatalf("%d day changes for %d distinct days: a day is split", changes, len(seen))
	}
	if got := a.Days(); len(got) != len(seen) {
		t.Fatalf("Days() reports %d days, store holds %d", len(got), len(seen))
	}
}

// TestAppendProperties drives deterministic pseudo-random batch sequences
// through AppendDB and checks, after every append: ordering invariants,
// faithful item storage, DayBounds/SinceDay agreement with a linear scan,
// vocabulary growth, and that earlier views are immutable snapshots.
func TestAppendProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		a := NewAppend(5)
		type snap struct {
			view  *DB
			items [][]itemset.Item
		}
		var snaps []snap
		var all []Transaction
		day := rng.Intn(3)
		for batchNo := 0; batchNo < 10; batchNo++ {
			n := rng.Intn(5)
			batch := make([]Transaction, 0, n)
			for i := 0; i < n; i++ {
				day += []int{0, 0, 0, 1, 1, 3}[rng.Intn(6)]
				k := 1 + rng.Intn(4)
				set := map[itemset.Item]bool{}
				for len(set) < k {
					set[itemset.Item(rng.Intn(12))] = true
				}
				items := make(itemset.Itemset, 0, k)
				for it := itemset.Item(0); int(it) < 12; it++ {
					if set[it] {
						items = append(items, it)
					}
				}
				batch = append(batch, Transaction{Day: day, Items: items})
			}
			if err := a.Append(batch); err != nil {
				t.Fatal(err)
			}
			all = append(all, batch...)
			checkDayInvariants(t, a, 0)

			v := a.View()
			if v.Len() != len(all) {
				t.Fatalf("store holds %d tx, appended %d", v.Len(), len(all))
			}
			maxItem := 4
			for i, tx := range all {
				if itemset.Compare(v.ItemsOf(i), tx.Items) != 0 {
					t.Fatalf("tx %d stored as %v, appended %v", i, v.ItemsOf(i), tx.Items)
				}
				if v.DayOf(i) != tx.Day {
					t.Fatalf("tx %d stored on day %d, appended day %d", i, v.DayOf(i), tx.Day)
				}
				if n := len(tx.Items); n > 0 && int(tx.Items[n-1]) > maxItem {
					maxItem = int(tx.Items[n-1])
				}
			}
			if a.NumItems() != maxItem+1 {
				t.Fatalf("NumItems %d, want %d", a.NumItems(), maxItem+1)
			}
			for _, d := range a.Days() {
				lo, hi := a.DayBounds(d)
				wantLo, wantHi := -1, -1
				for i, tx := range all {
					if tx.Day == d {
						if wantLo < 0 {
							wantLo = i
						}
						wantHi = i + 1
					}
				}
				if lo != wantLo || hi != wantHi {
					t.Fatalf("DayBounds(%d) = [%d, %d), scan says [%d, %d)", d, lo, hi, wantLo, wantHi)
				}
				since := a.SinceDay(d)
				if since.Len() != len(all)-wantLo {
					t.Fatalf("SinceDay(%d) has %d tx, want %d", d, since.Len(), len(all)-wantLo)
				}
				if since.Len() > 0 && since.TIDOf(0) != TID(wantLo) {
					t.Fatalf("SinceDay(%d) starts at TID %d, want %d", d, since.TIDOf(0), wantLo)
				}
			}
			snaps = append(snaps, snap{view: v, items: func() [][]itemset.Item {
				out := make([][]itemset.Item, v.Len())
				for i := range out {
					out[i] = append([]itemset.Item(nil), v.ItemsOf(i)...)
				}
				return out
			}()})
			// Every earlier view must still read exactly what it saw when
			// taken — appends never mutate committed snapshots.
			for si, s := range snaps {
				for i := range s.items {
					if itemset.Compare(s.view.ItemsOf(i), s.items[i]) != 0 {
						t.Fatalf("snapshot %d tx %d changed after later appends", si, i)
					}
				}
			}
		}
	}
}

// TestAppendRejectsWholeBatch pins the no-partial-commit contract: a
// batch with any ordering violation leaves the store byte-for-byte
// untouched.
func TestAppendRejectsWholeBatch(t *testing.T) {
	seed := []Transaction{{Day: 3, Items: itemset.Itemset{1, 2}}, {Day: 4, Items: itemset.Itemset{0, 5}}}
	bad := map[string][]Transaction{
		"day decreases within batch": {
			{Day: 6, Items: itemset.Itemset{1}}, {Day: 5, Items: itemset.Itemset{2}}},
		"batch starts before last day": {{Day: 2, Items: itemset.Itemset{1}}},
		"items not strictly increasing": {
			{Day: 7, Items: itemset.Itemset{3, 3}}},
		"items unsorted": {
			{Day: 7, Items: itemset.Itemset{4, 1}}},
		"valid then invalid": {
			{Day: 8, Items: itemset.Itemset{1}}, {Day: 8, Items: itemset.Itemset{2, 1}}},
	}
	for name, batch := range bad {
		a := NewAppend(6)
		if err := a.Append(seed); err != nil {
			t.Fatal(err)
		}
		wantLen, wantItems, wantTID := a.Len(), a.NumItems(), a.NextTID()
		if err := a.Append(batch); err == nil {
			t.Errorf("%s: accepted", name)
			continue
		}
		if a.Len() != wantLen || a.NumItems() != wantItems || a.NextTID() != wantTID {
			t.Errorf("%s: rejection mutated the store", name)
		}
		checkDayInvariants(t, a, 0)
	}
}

// TestNewAppendAtPreservesTIDs pins the resume contract: a store rebuilt
// at a TID base reissues the original numbering.
func TestNewAppendAtPreservesTIDs(t *testing.T) {
	a := NewAppendAt(3, 40)
	if a.NextTID() != 40 {
		t.Fatalf("NextTID %d, want 40", a.NextTID())
	}
	if err := a.Append([]Transaction{{Day: 1, Items: itemset.Itemset{0}}, {Day: 2, Items: itemset.Itemset{1, 2}}}); err != nil {
		t.Fatal(err)
	}
	checkDayInvariants(t, a, 40)
	if a.NextTID() != 42 {
		t.Fatalf("NextTID %d after two appends, want 42", a.NextTID())
	}
}

// TestSplitRoundRobinDegenerateFallback covers the fewer-day-groups-than-
// nodes fallback directly: the round-robin split must hand back exactly
// the chronological split (same transactions on every node), so no node
// is left empty.
func TestSplitRoundRobinDegenerateFallback(t *testing.T) {
	var txs []Transaction
	tid := TID(0)
	for day := 0; day < 2; day++ { // 2 day groups, 4 nodes: degenerate
		for i := 0; i < 6; i++ {
			txs = append(txs, Transaction{TID: tid, Day: day,
				Items: itemset.Itemset{itemset.Item(i), itemset.Item(6 + day)}})
			tid++
		}
	}
	db := New(txs, 8)
	const nodes = 4
	rr := db.SplitRoundRobin(nodes)
	chrono := db.SplitChronological(nodes)
	if len(rr) != nodes || len(chrono) != nodes {
		t.Fatalf("%d round-robin parts, %d chronological, want %d", len(rr), len(chrono), nodes)
	}
	for n := 0; n < nodes; n++ {
		if rr[n].Len() == 0 {
			t.Fatalf("node %d empty under the degenerate fallback", n)
		}
		if rr[n].Len() != chrono[n].Len() {
			t.Fatalf("node %d: %d tx round-robin vs %d chronological", n, rr[n].Len(), chrono[n].Len())
		}
		for i := 0; i < rr[n].Len(); i++ {
			if rr[n].TIDOf(i) != chrono[n].TIDOf(i) ||
				itemset.Compare(rr[n].ItemsOf(i), chrono[n].ItemsOf(i)) != 0 {
				t.Fatalf("node %d tx %d differs between fallback and chronological split", n, i)
			}
		}
	}

	// Sanity: with at least as many groups as nodes the dealer is NOT the
	// chronological split — every node still gets every group position
	// i ≡ n (mod nodes).
	var wide []Transaction
	tid = 0
	for day := 0; day < 8; day++ {
		for i := 0; i < 2; i++ {
			wide = append(wide, Transaction{TID: tid, Day: day, Items: itemset.Itemset{itemset.Item(i)}})
			tid++
		}
	}
	wdb := New(wide, 4)
	parts := wdb.SplitRoundRobin(nodes)
	total := 0
	for n, p := range parts {
		total += p.Len()
		for i := 0; i < p.Len(); i++ {
			if p.DayOf(i)%nodes != n {
				t.Fatalf("node %d holds day %d; round-robin should deal day d to node d%%%d", n, p.DayOf(i), nodes)
			}
		}
	}
	if total != wdb.Len() {
		t.Fatalf("split drops transactions: %d of %d", total, wdb.Len())
	}
}

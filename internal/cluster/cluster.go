// Package cluster provides the simulated cluster-of-workstations substrate
// the parallel miners run on: per-node simulated clocks driven by the
// mining cost model, a network cost model calibrated to the paper's Fast
// Ethernet testbed, the logical binary n-cube exchange pattern of PMIHP's
// communication steps, and per-node traffic statistics.
//
// The processing nodes themselves are goroutines (see internal/core and
// internal/countdist); this package supplies the time and cost accounting.
// DESIGN.md §2 documents why simulated time is the honest way to evaluate
// an 8-node algorithm on this host and why it preserves the paper's
// comparisons: every reported effect is driven by per-node candidate and
// scan counts, which are measured exactly.
package cluster

import (
	"fmt"
	"math/bits"
	"sync"

	"pmihp/internal/mining"
)

// NetParams models the interconnect: a fixed per-message latency and a
// point-to-point bandwidth.
type NetParams struct {
	LatencySec  float64
	BytesPerSec float64
}

// FastEthernet approximates the paper's switched 100 Mbit/s Fast Ethernet
// with Java RMI overheads (RMI round trips cost well above raw wire
// latency).
var FastEthernet = NetParams{LatencySec: 500e-6, BytesPerSec: 11e6}

// MsgSec returns the modeled one-way transfer time of a message.
func (p NetParams) MsgSec(bytes int64) float64 {
	return p.LatencySec + float64(bytes)/p.BytesPerSec
}

// Clock is a node's simulated clock. It is safe for concurrent use (a
// node's poll server and miner advance it from different goroutines).
type Clock struct {
	mu  sync.Mutex
	sec float64
}

// AdvanceWork advances the clock by the simulated duration of the given
// cost-model work units.
func (c *Clock) AdvanceWork(units int64) {
	c.AdvanceSec(float64(units) / mining.UnitsPerSecond)
}

// AdvanceSec advances the clock by s simulated seconds.
func (c *Clock) AdvanceSec(s float64) {
	c.mu.Lock()
	c.sec += s
	c.mu.Unlock()
}

// RaiseTo lifts the clock to at least s (barrier semantics).
func (c *Clock) RaiseTo(s float64) {
	c.mu.Lock()
	if c.sec < s {
		c.sec = s
	}
	c.mu.Unlock()
}

// Now returns the current simulated time.
func (c *Clock) Now() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sec
}

// NodeStats tallies the traffic a node originates.
type NodeStats struct {
	mu       sync.Mutex
	Messages int
	Bytes    int64
}

func (s *NodeStats) add(msgs int, bytes int64) {
	s.mu.Lock()
	s.Messages += msgs
	s.Bytes += bytes
	s.mu.Unlock()
}

// Snapshot returns the current totals.
func (s *NodeStats) Snapshot() (msgs int, bytes int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.Messages, s.Bytes
}

// Fabric is the simulated interconnect for one parallel run.
type Fabric struct {
	n      int
	net    NetParams
	clocks []*Clock
	stats  []*NodeStats
}

// New returns a fabric for n nodes.
func New(n int, net NetParams) *Fabric {
	if n <= 0 {
		panic(fmt.Sprintf("cluster: New(%d)", n))
	}
	f := &Fabric{n: n, net: net, clocks: make([]*Clock, n), stats: make([]*NodeStats, n)}
	for i := range f.clocks {
		f.clocks[i] = &Clock{}
		f.stats[i] = &NodeStats{}
	}
	return f
}

// N returns the node count.
func (f *Fabric) N() int { return f.n }

// Net returns the interconnect parameters.
func (f *Fabric) Net() NetParams { return f.net }

// Clock returns node i's clock.
func (f *Fabric) Clock(i int) *Clock { return f.clocks[i] }

// Stats returns node i's traffic stats.
func (f *Fabric) Stats(i int) *NodeStats { return f.stats[i] }

// ChargeSend accounts a point-to-point message: the sender's clock and
// traffic advance by the transfer cost, and the receiver's clock advances by
// the same cost (receive-side processing).
func (f *Fabric) ChargeSend(from, to int, bytes int64) {
	t := f.net.MsgSec(bytes)
	f.clocks[from].AdvanceSec(t)
	f.clocks[to].AdvanceSec(t)
	f.stats[from].add(1, bytes)
}

// Barrier raises every clock to the current maximum and returns it —
// the synchronization point between parallel phases.
func (f *Fabric) Barrier() float64 {
	max := 0.0
	for _, c := range f.clocks {
		if t := c.Now(); t > max {
			max = t
		}
	}
	for _, c := range f.clocks {
		c.RaiseTo(max)
	}
	return max
}

// MaxClock returns the largest node clock — the total execution time of a
// parallel run.
func (f *Fabric) MaxClock() float64 {
	max := 0.0
	for _, c := range f.clocks {
		if t := c.Now(); t > max {
			max = t
		}
	}
	return max
}

// CubeSteps returns the number of exchange-merge steps of the logical binary
// n-cube over n nodes (⌈log2 n⌉; the paper's 8 nodes form a 3-cube).
func CubeSteps(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// CubePartner returns the partner of node i along dimension d (0-based) and
// whether that partner exists (it may not when n is not a power of two).
func CubePartner(i, d, n int) (partner int, ok bool) {
	p := i ^ (1 << d)
	return p, p < n
}

// AllGather performs the cost accounting of a hypercube all-gather in which
// every node contributes perNodeBytes: at step d each node exchanges the
// 2^d blocks gathered so far with its dimension-d partner. All clocks
// synchronize first (it is a collective) and advance together; per-node
// traffic grows by the bytes each node sends. It returns the elapsed
// simulated time of the collective.
func (f *Fabric) AllGather(perNodeBytes int64) float64 {
	if f.n == 1 {
		return 0
	}
	f.Barrier()
	elapsed := 0.0
	for d := 0; d < CubeSteps(f.n); d++ {
		blockBytes := perNodeBytes * int64(1<<d)
		elapsed += f.net.MsgSec(blockBytes)
		for i := 0; i < f.n; i++ {
			f.stats[i].add(1, blockBytes)
		}
	}
	for _, c := range f.clocks {
		c.AdvanceSec(elapsed)
	}
	return elapsed
}

// AllReduce performs the cost accounting of a hypercube all-reduce of a
// fixed-size vector (bytes per step is constant, unlike AllGather).
func (f *Fabric) AllReduce(vectorBytes int64) float64 {
	if f.n == 1 {
		return 0
	}
	f.Barrier()
	elapsed := 0.0
	for d := 0; d < CubeSteps(f.n); d++ {
		elapsed += f.net.MsgSec(vectorBytes)
		for i := 0; i < f.n; i++ {
			f.stats[i].add(1, vectorBytes)
		}
	}
	for _, c := range f.clocks {
		c.AdvanceSec(elapsed)
	}
	return elapsed
}

package cluster

import (
	"math"
	"sync"
	"testing"

	"pmihp/internal/mining"
)

func TestCubeSteps(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 16: 4}
	for n, want := range cases {
		if got := CubeSteps(n); got != want {
			t.Errorf("CubeSteps(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestCubePartner(t *testing.T) {
	// In the paper's 3-cube, node 000 links to 001, 010, 100.
	wants := []int{1, 2, 4}
	for d, want := range wants {
		p, ok := CubePartner(0, d, 8)
		if !ok || p != want {
			t.Fatalf("CubePartner(0, %d, 8) = %d, %v", d, p, ok)
		}
	}
	// Partnering is symmetric.
	for _, n := range []int{2, 4, 8} {
		for i := 0; i < n; i++ {
			for d := 0; d < CubeSteps(n); d++ {
				p, ok := CubePartner(i, d, n)
				if !ok {
					continue
				}
				back, ok2 := CubePartner(p, d, n)
				if !ok2 || back != i {
					t.Fatalf("asymmetric partner: n=%d i=%d d=%d", n, i, d)
				}
			}
		}
	}
	// Non-power-of-two: missing partners reported.
	if _, ok := CubePartner(2, 0, 3); ok {
		t.Fatal("partner 3 should not exist with n=3")
	}
}

func TestClockConcurrentAdvance(t *testing.T) {
	var c Clock
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.AdvanceSec(0.001)
			}
		}()
	}
	wg.Wait()
	if math.Abs(c.Now()-8.0) > 1e-6 {
		t.Fatalf("clock = %g, want 8", c.Now())
	}
	c.RaiseTo(5)
	if c.Now() < 8 {
		t.Fatal("RaiseTo lowered the clock")
	}
	c.RaiseTo(100)
	if c.Now() != 100 {
		t.Fatalf("RaiseTo = %g", c.Now())
	}
}

func TestAdvanceWorkUsesCostModel(t *testing.T) {
	var c Clock
	c.AdvanceWork(mining.UnitsPerSecond)
	if math.Abs(c.Now()-1.0) > 1e-9 {
		t.Fatalf("1 second of work units = %g seconds", c.Now())
	}
}

func TestChargeSendAccounting(t *testing.T) {
	f := New(2, NetParams{LatencySec: 0.001, BytesPerSec: 1000})
	f.ChargeSend(0, 1, 500)
	want := 0.001 + 0.5
	if math.Abs(f.Clock(0).Now()-want) > 1e-9 || math.Abs(f.Clock(1).Now()-want) > 1e-9 {
		t.Fatalf("clocks = %g, %g, want %g", f.Clock(0).Now(), f.Clock(1).Now(), want)
	}
	msgs, bytes := f.Stats(0).Snapshot()
	if msgs != 1 || bytes != 500 {
		t.Fatalf("sender stats = %d msgs, %d bytes", msgs, bytes)
	}
	msgs, _ = f.Stats(1).Snapshot()
	if msgs != 0 {
		t.Fatal("receiver gained origination stats")
	}
}

func TestBarrier(t *testing.T) {
	f := New(3, FastEthernet)
	f.Clock(0).AdvanceSec(1)
	f.Clock(2).AdvanceSec(5)
	max := f.Barrier()
	if max != 5 {
		t.Fatalf("Barrier = %g", max)
	}
	for i := 0; i < 3; i++ {
		if f.Clock(i).Now() != 5 {
			t.Fatalf("clock %d = %g after barrier", i, f.Clock(i).Now())
		}
	}
	if f.MaxClock() != 5 {
		t.Fatalf("MaxClock = %g", f.MaxClock())
	}
}

func TestAllGatherCost(t *testing.T) {
	net := NetParams{LatencySec: 0.01, BytesPerSec: 1e6}
	f := New(8, net)
	elapsed := f.AllGather(1000)
	// 3 steps exchanging 1, 2, 4 blocks.
	want := net.MsgSec(1000) + net.MsgSec(2000) + net.MsgSec(4000)
	if math.Abs(elapsed-want) > 1e-9 {
		t.Fatalf("AllGather = %g, want %g", elapsed, want)
	}
	for i := 0; i < 8; i++ {
		if math.Abs(f.Clock(i).Now()-want) > 1e-9 {
			t.Fatalf("clock %d = %g", i, f.Clock(i).Now())
		}
	}
	// Single node: free.
	f1 := New(1, net)
	if f1.AllGather(1000) != 0 {
		t.Fatal("1-node AllGather should cost nothing")
	}
}

func TestAllReduceCost(t *testing.T) {
	net := NetParams{LatencySec: 0.01, BytesPerSec: 1e6}
	f := New(4, net)
	elapsed := f.AllReduce(4096)
	want := 2 * net.MsgSec(4096) // 2 cube steps, constant vector size
	if math.Abs(elapsed-want) > 1e-9 {
		t.Fatalf("AllReduce = %g, want %g", elapsed, want)
	}
}

func TestAllGatherSynchronizesFirst(t *testing.T) {
	f := New(2, FastEthernet)
	f.Clock(1).AdvanceSec(3)
	f.AllGather(100)
	if f.Clock(0).Now() < 3 {
		t.Fatal("AllGather did not synchronize the slow node")
	}
}

func TestMsgSec(t *testing.T) {
	p := NetParams{LatencySec: 0.5, BytesPerSec: 100}
	if got := p.MsgSec(50); math.Abs(got-1.0) > 1e-9 {
		t.Fatalf("MsgSec = %g", got)
	}
}

func TestNewPanicsOnZeroNodes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(0, FastEthernet)
}

func TestAllGatherTimeTopologies(t *testing.T) {
	net := NetParams{LatencySec: 0.001, BytesPerSec: 1e6}
	for _, n := range []int{2, 4, 8, 16} {
		h := AllGatherTime(Hypercube, n, 1000, net)
		r := AllGatherTime(Ring, n, 1000, net)
		s := AllGatherTime(Star, n, 1000, net)
		if h > r+1e-12 || r > s+1e-12 {
			t.Fatalf("n=%d: expected hypercube <= ring <= star, got %g, %g, %g", n, h, r, s)
		}
	}
	if AllGatherTime(Hypercube, 1, 1000, net) != 0 {
		t.Fatal("single node should cost nothing")
	}
	// Exact hypercube value for 8 nodes.
	want := net.MsgSec(1000) + net.MsgSec(2000) + net.MsgSec(4000)
	if got := AllGatherTime(Hypercube, 8, 1000, net); math.Abs(got-want) > 1e-12 {
		t.Fatalf("hypercube(8) = %g, want %g", got, want)
	}
	// Exact ring value.
	if got := AllGatherTime(Ring, 8, 1000, net); math.Abs(got-7*net.MsgSec(1000)) > 1e-12 {
		t.Fatalf("ring(8) = %g", got)
	}
}

func TestAllGatherWithChargesStats(t *testing.T) {
	net := NetParams{LatencySec: 0.001, BytesPerSec: 1e6}
	f := New(4, net)
	elapsed := f.AllGatherWith(Star, 100)
	if elapsed <= 0 {
		t.Fatal("no elapsed time")
	}
	// The hub originates far more bytes than a spoke.
	_, hub := f.Stats(0).Snapshot()
	_, spoke := f.Stats(1).Snapshot()
	if hub <= spoke {
		t.Fatalf("hub bytes %d not above spoke %d", hub, spoke)
	}
	for i := 0; i < 4; i++ {
		if f.Clock(i).Now() != elapsed {
			t.Fatal("clocks not advanced uniformly")
		}
	}
}

func TestTopologyString(t *testing.T) {
	if Hypercube.String() != "hypercube" || Ring.String() != "ring" || Star.String() != "star" {
		t.Fatal("topology names wrong")
	}
	if Topology(99).String() != "unknown" {
		t.Fatal("unknown topology name")
	}
}

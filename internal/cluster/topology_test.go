package cluster

import (
	"math/bits"
	"testing"
)

// TestCubeStepsBoundaries pins the step count at and around the
// boundaries the TCP exchange depends on (the star fallback triggers
// exactly when n is not a power of two).
func TestCubeStepsBoundaries(t *testing.T) {
	cases := map[int]int{
		0: 0, 1: 0, // degenerate clusters exchange nothing
		2: 1, 3: 2, 4: 2, 5: 3, 6: 3, 7: 3, 8: 3,
		15: 4, 16: 4, 17: 5, 31: 5, 32: 5, 33: 6,
	}
	for n, want := range cases {
		if got := CubeSteps(n); got != want {
			t.Errorf("CubeSteps(%d) = %d, want %d", n, got, want)
		}
	}
}

// TestCubePartnerNonPowerOfTwo checks the partner relation off powers
// of two: every reported partner is in range, symmetric, and differs
// from its node in exactly the step's bit; and at least one (node,
// step) pair has no partner, which is what forces the fallback path.
func TestCubePartnerNonPowerOfTwo(t *testing.T) {
	for _, n := range []int{3, 5, 6, 7, 9, 12} {
		missing := 0
		for i := 0; i < n; i++ {
			for d := 0; d < CubeSteps(n); d++ {
				p, ok := CubePartner(i, d, n)
				if !ok {
					missing++
					continue
				}
				if p < 0 || p >= n || p == i {
					t.Fatalf("n=%d: CubePartner(%d, %d) = %d out of range", n, i, d, p)
				}
				if i^p != 1<<d {
					t.Fatalf("n=%d: partner %d of %d differs in bits %b, want bit %d", n, p, i, i^p, d)
				}
				back, ok2 := CubePartner(p, d, n)
				if !ok2 || back != i {
					t.Fatalf("n=%d: asymmetric partnering at i=%d d=%d", n, i, d)
				}
			}
		}
		if missing == 0 {
			t.Fatalf("n=%d: expected missing partners off a power of two", n)
		}
	}
	// Powers of two have a full partner set.
	for _, n := range []int{2, 4, 8, 16} {
		for i := 0; i < n; i++ {
			for d := 0; d < CubeSteps(n); d++ {
				if _, ok := CubePartner(i, d, n); !ok {
					t.Fatalf("n=%d: missing partner at i=%d d=%d", n, i, d)
				}
			}
		}
	}
}

// TestCubeCoverage simulates recursive doubling on power-of-two
// clusters: swapping everything gathered so far with the dimension-d
// partner at each step must leave every node holding all n blocks
// after CubeSteps(n) steps — the property the paper's n-cube exchange
// (§2.4) and the TCP all-gather rely on.
func TestCubeCoverage(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 16, 32} {
		have := make([]uint64, n) // bitmask of blocks held per node
		for i := range have {
			have[i] = 1 << i
		}
		for d := 0; d < CubeSteps(n); d++ {
			next := make([]uint64, n)
			for i := 0; i < n; i++ {
				p, ok := CubePartner(i, d, n)
				if !ok {
					t.Fatalf("n=%d: missing partner at i=%d d=%d", n, i, d)
				}
				next[i] = have[i] | have[p]
			}
			have = next
		}
		all := uint64(1)<<n - 1
		for i, h := range have {
			if h != all {
				t.Fatalf("n=%d: node %d holds %d/%d blocks after %d steps",
					n, i, bits.OnesCount64(h), n, CubeSteps(n))
			}
		}
	}
}

// TestSingleNodeDegenerate checks that a 1-node cluster's collectives
// are free under every topology and leave no trace in clocks or stats.
func TestSingleNodeDegenerate(t *testing.T) {
	for _, topo := range []Topology{Hypercube, Ring, Star} {
		f := New(1, FastEthernet)
		if got := f.AllGatherWith(topo, 1<<20); got != 0 {
			t.Fatalf("%s: 1-node all-gather cost %g", topo, got)
		}
		if got := AllGatherTime(topo, 1, 1<<20, FastEthernet); got != 0 {
			t.Fatalf("%s: AllGatherTime(1) = %g", topo, got)
		}
		if f.Clock(0).Now() != 0 {
			t.Fatalf("%s: clock advanced to %g", topo, f.Clock(0).Now())
		}
		msgs, bytes := f.Stats(0).Snapshot()
		if msgs != 0 || bytes != 0 {
			t.Fatalf("%s: stats charged: %d msgs, %d bytes", topo, msgs, bytes)
		}
	}
	f := New(1, FastEthernet)
	if f.AllGather(100) != 0 || f.AllReduce(100) != 0 {
		t.Fatal("1-node cube collectives should cost nothing")
	}
	if f.Barrier() != 0 {
		t.Fatal("1-node barrier moved the clock")
	}
}

package cluster

// Alternative collective-communication topologies. The paper imposes "a
// logical binary n-cube structure on the processing nodes" so that local
// information merges in n steps over increasingly higher-dimensional links
// (§2.4, citing Chung & Yang); the A10 ablation uses these models to show
// what that choice buys over naive patterns.

// Topology identifies a collective-exchange pattern.
type Topology int

const (
	// Hypercube is the paper's binary n-cube: ⌈log2 n⌉ exchange-merge
	// steps, data volume doubling per step in an all-gather.
	Hypercube Topology = iota
	// Ring passes blocks around a cycle: n-1 steps of one per-node block
	// each.
	Ring
	// Star funnels everything through node 0: n-1 sequential receives
	// followed by n-1 sequential broadcasts of the full payload.
	Star
)

func (t Topology) String() string {
	switch t {
	case Hypercube:
		return "hypercube"
	case Ring:
		return "ring"
	case Star:
		return "star"
	}
	return "unknown"
}

// AllGatherTime returns the modeled elapsed time of an all-gather in which
// every one of n nodes contributes perNodeBytes, under the given topology.
// It is a pure cost function; AllGatherWith applies it to a fabric.
func AllGatherTime(t Topology, n int, perNodeBytes int64, net NetParams) float64 {
	if n <= 1 {
		return 0
	}
	switch t {
	case Ring:
		// n-1 steps; in each, every node forwards one block to its
		// successor in parallel.
		return float64(n-1) * net.MsgSec(perNodeBytes)
	case Star:
		// The hub receives n-1 blocks one at a time, then sends the full
		// n-block payload to each spoke in turn.
		in := float64(n-1) * net.MsgSec(perNodeBytes)
		out := float64(n-1) * net.MsgSec(perNodeBytes*int64(n))
		return in + out
	default: // Hypercube
		elapsed := 0.0
		for d := 0; d < CubeSteps(n); d++ {
			elapsed += net.MsgSec(perNodeBytes * int64(1<<d))
		}
		return elapsed
	}
}

// AllGatherWith performs the cost accounting of an all-gather under the
// given topology: clocks synchronize (it is a collective), advance by the
// modeled time, and per-node traffic grows by the bytes each node sends.
func (f *Fabric) AllGatherWith(t Topology, perNodeBytes int64) float64 {
	if f.n == 1 {
		return 0
	}
	f.Barrier()
	elapsed := AllGatherTime(t, f.n, perNodeBytes, f.net)
	for i := 0; i < f.n; i++ {
		sent := int64(0)
		msgs := 0
		switch t {
		case Ring:
			sent = perNodeBytes * int64(f.n-1)
			msgs = f.n - 1
		case Star:
			if i == 0 {
				sent = perNodeBytes * int64(f.n) * int64(f.n-1)
				msgs = f.n - 1
			} else {
				sent = perNodeBytes
				msgs = 1
			}
		default:
			for d := 0; d < CubeSteps(f.n); d++ {
				sent += perNodeBytes * int64(1<<d)
				msgs++
			}
		}
		f.stats[i].add(msgs, sent)
	}
	for _, c := range f.clocks {
		c.AdvanceSec(elapsed)
	}
	return elapsed
}

package fpgrowth

import (
	"testing"

	"pmihp/internal/corpus"
	"pmihp/internal/itemset"
	"pmihp/internal/mining"
	"pmihp/internal/text"
	"pmihp/internal/txdb"
)

func TestKnownAnswer(t *testing.T) {
	db := txdb.New([]txdb.Transaction{
		{TID: 0, Items: itemset.New(1, 2, 3)},
		{TID: 1, Items: itemset.New(1, 2)},
		{TID: 2, Items: itemset.New(1, 3)},
		{TID: 3, Items: itemset.New(2, 3)},
		{TID: 4, Items: itemset.New(1, 2, 3)},
	}, 5)
	r, err := Mine(db, mining.Options{MinSupCount: 3})
	if err != nil {
		t.Fatal(err)
	}
	want := mining.BruteForce(db, mining.Options{MinSupCount: 3})
	if ok, diff := mining.SameFrequentSets(want, r); !ok {
		t.Fatal(diff)
	}
}

func TestMatchesBruteForceOnCorpus(t *testing.T) {
	cfg := corpus.CorpusB(corpus.Small)
	cfg.Docs, cfg.VocabSize, cfg.HeadCut, cfg.DocLenMean = 70, 600, 40, 18
	docs := corpus.MustGenerate(cfg)
	db, _ := text.ToDB(docs, nil)
	for _, minsup := range []float64{0.10, 0.05} {
		opts := mining.Options{MinSupFrac: minsup}
		want := mining.BruteForce(db, opts)
		got, err := Mine(db, opts)
		if err != nil {
			t.Fatal(err)
		}
		if ok, diff := mining.SameFrequentSets(want, got); !ok {
			t.Fatalf("minsup=%g: %s", minsup, diff)
		}
	}
}

func TestMaxK(t *testing.T) {
	cfg := corpus.CorpusB(corpus.Small)
	docs := corpus.MustGenerate(cfg)
	db, _ := text.ToDB(docs, nil)
	r, err := Mine(db, mining.Options{MinSupCount: 4, MaxK: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range r.Frequent {
		if len(c.Set) > 2 {
			t.Fatalf("MaxK=2 violated: %v", c.Set)
		}
	}
	// MaxK=1 returns exactly the frequent items.
	r1, err := Mine(db, mining.Options{MinSupCount: 4, MaxK: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range r1.Frequent {
		if len(c.Set) != 1 {
			t.Fatalf("MaxK=1 violated: %v", c.Set)
		}
	}
}

func TestNoDuplicateItemsets(t *testing.T) {
	cfg := corpus.CorpusB(corpus.Small)
	docs := corpus.MustGenerate(cfg)
	db, _ := text.ToDB(docs, nil)
	r, err := Mine(db, mining.Options{MinSupCount: 6})
	if err != nil {
		t.Fatal(err)
	}
	seen := itemset.NewSet()
	for _, c := range r.Frequent {
		if seen.Has(c.Set) {
			t.Fatalf("duplicate itemset %v", c.Set)
		}
		seen.Add(c.Set)
	}
}

func TestTreeNodeAccountingGrowsAtLowSupport(t *testing.T) {
	cfg := corpus.CorpusB(corpus.Small)
	docs := corpus.MustGenerate(cfg)
	db, _ := text.ToDB(docs, nil)
	hi, err := Mine(db, mining.Options{MinSupCount: 12, MaxK: 3})
	if err != nil {
		t.Fatal(err)
	}
	lo, err := Mine(db, mining.Options{MinSupCount: 3, MaxK: 3})
	if err != nil {
		t.Fatal(err)
	}
	if lo.Metrics.FPTreeNodes <= hi.Metrics.FPTreeNodes {
		t.Fatalf("FP-tree nodes did not grow as support dropped: %d vs %d",
			lo.Metrics.FPTreeNodes, hi.Metrics.FPTreeNodes)
	}
	if lo.Metrics.Work.Units <= hi.Metrics.Work.Units {
		t.Fatal("work did not grow as support dropped")
	}
}

func TestEmptyAndTinyDatabases(t *testing.T) {
	db := txdb.New(nil, 3)
	r, err := Mine(db, mining.Options{MinSupCount: 1})
	if err != nil || len(r.Frequent) != 0 {
		t.Fatalf("empty db: %v, %v", r.Frequent, err)
	}
	one := txdb.New([]txdb.Transaction{{TID: 0, Items: itemset.New(1)}}, 3)
	r, err = Mine(one, mining.Options{MinSupCount: 1})
	if err != nil || len(r.Frequent) != 1 {
		t.Fatalf("single-item db: %v, %v", r.Frequent, err)
	}
}

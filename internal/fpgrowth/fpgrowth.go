// Package fpgrowth implements the FP-Growth algorithm (Han, Pei & Yin,
// SIGMOD 2000), the pattern-growth baseline of Figure 4. FP-Growth avoids
// candidate generation by compressing the database into an FP-tree and
// recursively mining conditional trees; the paper observes it is competitive
// at high minimum support but that "the FP-tree becomes too large when the
// minimum support level is low" on text data, where long transactions over
// a huge vocabulary defeat the prefix compression. The node accounting here
// (Metrics.FPTreeNodes and the per-node work charges) reproduces exactly
// that blow-up.
package fpgrowth

import (
	"sort"

	"pmihp/internal/itemset"
	"pmihp/internal/mining"
	"pmihp/internal/txdb"
)

type fpNode struct {
	item     itemset.Item
	count    int
	parent   *fpNode
	children map[itemset.Item]*fpNode
	next     *fpNode // header-table chain
}

// fpTree is an FP-tree with its header table.
type fpTree struct {
	root    *fpNode
	heads   map[itemset.Item]*fpNode
	tails   map[itemset.Item]*fpNode
	order   map[itemset.Item]int // global frequency-descending rank
	metrics *mining.Metrics
}

func newTree(order map[itemset.Item]int, m *mining.Metrics) *fpTree {
	return &fpTree{
		root:    &fpNode{children: make(map[itemset.Item]*fpNode)},
		heads:   make(map[itemset.Item]*fpNode),
		tails:   make(map[itemset.Item]*fpNode),
		order:   order,
		metrics: m,
	}
}

// insert adds a path of items (already in tree order) with the given count.
func (t *fpTree) insert(items []itemset.Item, count int) {
	n := t.root
	for _, it := range items {
		child := n.children[it]
		if child == nil {
			child = &fpNode{item: it, count: 0, parent: n, children: make(map[itemset.Item]*fpNode)}
			n.children[it] = child
			t.metrics.FPTreeNodes++
			if t.tails[it] == nil {
				t.heads[it] = child
			} else {
				t.tails[it].next = child
			}
			t.tails[it] = child
		}
		child.count += count
		t.metrics.Work.Charge(1, mining.CostFPNode)
		n = child
	}
}

// Mine runs FP-Growth and returns every frequent itemset with its exact
// support count.
func Mine(db *txdb.DB, opts mining.Options) (*mining.Result, error) {
	opts = opts.WithDefaults()
	minCount := opts.MinCount(db.Len())
	res := &mining.Result{Metrics: mining.NewMetrics("fpgrowth")}
	m := &res.Metrics

	// Pass 1: item counts.
	counts := db.ItemCounts()
	m.Passes++
	total := 0
	db.Each(func(t *txdb.Transaction) { total += len(t.Items) })
	m.Work.Charge(int64(total), mining.CostScanItem)

	type fc struct {
		item  itemset.Item
		count int
	}
	var freq []fc
	for it, c := range counts {
		if c >= minCount {
			freq = append(freq, fc{itemset.Item(it), c})
		}
	}
	// Tree order: frequency descending, item id ascending for ties.
	sort.Slice(freq, func(i, j int) bool {
		if freq[i].count != freq[j].count {
			return freq[i].count > freq[j].count
		}
		return freq[i].item < freq[j].item
	})
	order := make(map[itemset.Item]int, len(freq))
	for rank, f := range freq {
		order[f.item] = rank
	}
	if opts.MaxK == 1 || len(freq) < 2 {
		// No growth pass: report the frequent items directly (mineTree
		// would otherwise emit them from the root header table).
		for _, f := range freq {
			res.Frequent = append(res.Frequent, itemset.Counted{
				Set: itemset.Itemset{f.item}, Count: f.count,
			})
		}
		itemset.SortCounted(res.Frequent)
		return res, nil
	}

	// Pass 2: build the FP-tree.
	tree := newTree(order, m)
	m.Passes++
	buf := make([]itemset.Item, 0, 256)
	db.Each(func(t *txdb.Transaction) {
		m.Work.Charge(int64(len(t.Items)), mining.CostScanItem)
		buf = buf[:0]
		for _, it := range t.Items {
			if _, ok := order[it]; ok {
				buf = append(buf, it)
			}
		}
		sort.Slice(buf, func(i, j int) bool { return order[buf[i]] < order[buf[j]] })
		tree.insert(buf, 1)
	})

	// Recursive growth.
	var prefix []itemset.Item
	mineTree(tree, prefix, minCount, opts.MaxK, res)

	m.NoteCandidateBytes(m.FPTreeNodes * 48) // ~node footprint
	m.NoteHeldBytes(db.MemBytes() + m.PeakCandidateBytes)
	itemset.SortCounted(res.Frequent)
	return res, nil
}

// mineTree grows patterns from the conditional tree. prefix holds the items
// already fixed (in arbitrary order); every emitted itemset is prefix plus
// one header item, sorted.
func mineTree(t *fpTree, prefix []itemset.Item, minCount, maxK int, res *mining.Result) {
	m := t.metrics
	// Header items in reverse tree order (least frequent first), the classic
	// bottom-up growth.
	items := make([]itemset.Item, 0, len(t.heads))
	for it := range t.heads {
		items = append(items, it)
	}
	sort.Slice(items, func(i, j int) bool { return t.order[items[i]] > t.order[items[j]] })

	for _, it := range items {
		support := 0
		for n := t.heads[it]; n != nil; n = n.next {
			support += n.count
			m.Work.Charge(1, mining.CostFPNode)
		}
		if support < minCount {
			continue
		}
		pattern := append(append([]itemset.Item{}, prefix...), it)
		set := itemset.New(pattern...)
		res.Frequent = append(res.Frequent, itemset.Counted{Set: set, Count: support})
		if maxK > 0 && len(pattern) >= maxK {
			continue
		}

		// Conditional pattern base: first find the conditionally frequent
		// items (paths are pruned to them, the standard FP-Growth
		// optimization), then build the conditional tree.
		condCount := make(map[itemset.Item]int)
		for n := t.heads[it]; n != nil; n = n.next {
			for p := n.parent; p != nil && p.parent != nil; p = p.parent {
				condCount[p.item] += n.count
				m.Work.Charge(1, mining.CostFPNode)
			}
		}
		cond := newTree(t.order, m)
		any := false
		for n := t.heads[it]; n != nil; n = n.next {
			var path []itemset.Item
			for p := n.parent; p != nil && p.parent != nil; p = p.parent {
				if condCount[p.item] >= minCount {
					path = append(path, p.item)
				}
			}
			if len(path) == 0 {
				continue
			}
			// path was collected leaf-to-root; restore tree order.
			for l, r := 0, len(path)-1; l < r; l, r = l+1, r-1 {
				path[l], path[r] = path[r], path[l]
			}
			cond.insert(path, n.count)
			any = true
		}
		if any {
			mineTree(cond, pattern, minCount, maxK, res)
		}
	}
}

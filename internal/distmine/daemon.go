package distmine

import (
	"bytes"
	"fmt"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"pmihp/internal/mining"
	"pmihp/internal/obs"
	"pmihp/internal/transport"
	"pmihp/internal/txdb"
)

// DaemonOptions tunes a node daemon.
type DaemonOptions struct {
	// IOTimeout bounds individual reads/writes; WaitTimeout bounds waits
	// for cluster-level progress (a peer reaching a collective, an Init
	// arriving for an early peer connection). Zeros select the transport
	// defaults (30s / 120s).
	IOTimeout   time.Duration
	WaitTimeout time.Duration
	// HeartbeatInterval is the control-plane liveness beacon interval
	// used when a session's Init does not set one (zero: 500ms).
	HeartbeatInterval time.Duration
	// Retry bounds the exchange's dial/step retries.
	Retry transport.RetryPolicy
	// Logf, when non-nil, receives daemon lifecycle logs.
	Logf func(format string, args ...any)
	// Obs, when non-nil, receives every hosted node's pass events,
	// collective spans, and poll batches (the -metrics-addr /-trace-json
	// sink of pmihp-node). Sessions share the recorder; span events carry
	// the daemon's listen address.
	Obs *obs.Recorder
	// DenseThresholdOverride, when positive, replaces the session Init's
	// posting-density threshold on this daemon — a node-local layout
	// choice for heterogeneous hardware (mining.DenseThresholdAll forces
	// bitmaps, math.Inf(1) forces compressed blocks). Zero or negative
	// (the default) inherits the coordinator's value. Either way the
	// layout never changes counts or simulated charges.
	DenseThresholdOverride float64
	// RequirePartitioner, when non-nil, rejects sessions whose Init was
	// partitioned by a different policy. Unlike DenseThresholdOverride
	// this is a guard, not an override: the partition arrives pre-cut
	// from the coordinator, so a daemon cannot re-split it — it can only
	// refuse to serve a placement its operator does not want.
	RequirePartitioner *mining.Partitioner
}

// sessionKey identifies one logical node of one mining session. After a
// failover a daemon may host several logical nodes of the same cluster,
// so sessions are keyed by (cluster, node) and peer connections are
// routed by their Hello's To field.
type sessionKey struct {
	cluster uint64
	node    int32
}

// daemonSession is one registered logical node: its peer exchange, a
// teardown trigger, and a drained signal. A re-Init for the same key
// supersedes a draining predecessor by calling stop and waiting on
// done instead of rejecting the new session.
type daemonSession struct {
	x    *transport.TCPExchange
	stop func()
	done chan struct{}
}

// Daemon is a PMIHP worker process: one listener serving the
// coordinator's control plane and peers' exchange traffic, dispatched
// by each connection's Hello. A daemon can serve many mining sessions
// (and, after failovers, several logical nodes of one session) over its
// lifetime; each logical node is driven by its own control connection.
type Daemon struct {
	opt  DaemonOptions
	addr string

	mu       sync.Mutex
	sessions map[sessionKey]*daemonSession
}

// NewDaemon returns a daemon with the given options.
func NewDaemon(opt DaemonOptions) *Daemon {
	if opt.WaitTimeout <= 0 {
		opt.WaitTimeout = 120 * time.Second
	}
	if opt.IOTimeout <= 0 {
		opt.IOTimeout = 30 * time.Second
	}
	if opt.HeartbeatInterval <= 0 {
		opt.HeartbeatInterval = 500 * time.Millisecond
	}
	if opt.Logf == nil {
		opt.Logf = func(string, ...any) {}
	}
	return &Daemon{opt: opt, sessions: make(map[sessionKey]*daemonSession)}
}

// ActiveSessions reports how many logical-node sessions the daemon
// currently hosts — zero once every session has fully drained. The
// multi-tenant scheduler's tests use it to prove completed sessions
// leave no orphans behind.
func (d *Daemon) ActiveSessions() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.sessions)
}

// Serve accepts and dispatches connections until the listener closes.
func (d *Daemon) Serve(ln net.Listener) error {
	d.addr = ln.Addr().String()
	d.opt.Obs.SetDaemon(d.addr)
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		go d.handleConn(conn)
	}
}

// handleConn reads the Hello and routes the connection.
func (d *Daemon) handleConn(conn net.Conn) {
	conn.SetReadDeadline(time.Now().Add(d.opt.WaitTimeout))
	t, payload, err := transport.ReadFrame(conn, nil)
	if err != nil || t != transport.MsgHello {
		conn.Close()
		return
	}
	hello, err := transport.DecodeHello(payload)
	if err != nil {
		conn.Close()
		return
	}
	switch hello.Purpose {
	case transport.PurposeControl:
		d.handleControl(conn, hello)
	case transport.PurposeCube, transport.PurposePoll:
		// A peer may connect before this node's Init has been processed
		// (the coordinator initializes nodes one by one); wait for the
		// session to appear.
		x, err := d.exchange(hello.ClusterID, hello.To)
		if err != nil {
			d.opt.Logf("pmihp-node: dropping peer conn for cluster %x node %d: %v", hello.ClusterID, hello.To, err)
			conn.Close()
			return
		}
		x.HandlePeerConn(conn, hello)
	default:
		conn.Close()
	}
}

// exchange waits for the logical node's session to be registered and
// returns its exchange.
func (d *Daemon) exchange(clusterID uint64, node int32) (*transport.TCPExchange, error) {
	key := sessionKey{clusterID, node}
	deadline := time.Now().Add(d.opt.WaitTimeout)
	for {
		d.mu.Lock()
		ds := d.sessions[key]
		d.mu.Unlock()
		if ds != nil {
			return ds.x, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("no session for cluster %x node %d after %v", clusterID, node, d.opt.WaitTimeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// handleControl runs one logical node's mining session driven by the
// coordinator: Init in, heartbeats and (from node 0) progress
// checkpoints during, NodeDone (or ErrorMsg) out, Shutdown to finish.
func (d *Daemon) handleControl(conn net.Conn, hello transport.Hello) {
	defer conn.Close()

	// All control-plane writes (heartbeats, progress, the terminal
	// report) share the connection; serialize them.
	var writeMu sync.Mutex
	write := func(msgType uint8, payload []byte, timeout time.Duration) error {
		writeMu.Lock()
		defer writeMu.Unlock()
		return writeFrameDeadline(conn, msgType, payload, timeout)
	}
	fail := func(err error) {
		d.opt.Logf("pmihp-node: session %x: %v", hello.ClusterID, err)
		write(transport.MsgError, transport.AppendError(nil, transport.ErrorMsg{Text: err.Error()}), d.opt.IOTimeout)
	}

	conn.SetReadDeadline(time.Now().Add(d.opt.WaitTimeout))
	t, payload, err := transport.ReadFrame(conn, nil)
	if err != nil {
		d.opt.Logf("pmihp-node: session %x: reading init: %v", hello.ClusterID, err)
		return
	}
	if t != transport.MsgInit {
		fail(fmt.Errorf("expected init, got message type %d", t))
		return
	}
	init, err := transport.DecodeInit(payload)
	if err != nil {
		fail(fmt.Errorf("bad init: %w", err))
		return
	}
	if init.ClusterID != hello.ClusterID {
		fail(fmt.Errorf("init cluster %x on control conn for %x", init.ClusterID, hello.ClusterID))
		return
	}
	if rp := d.opt.RequirePartitioner; rp != nil && mining.Partitioner(init.Partitioner) != *rp {
		fail(fmt.Errorf("node %d: session uses %s partitioning, this daemon requires %s",
			init.NodeID, mining.Partitioner(init.Partitioner), *rp))
		return
	}
	db, err := txdb.ReadDB(bytes.NewReader(init.DB))
	if err != nil {
		fail(fmt.Errorf("decoding partition: %w", err))
		return
	}
	var resume *transport.Checkpoint
	if len(init.Resume) > 0 {
		c, cerr := transport.DecodeCheckpoint(init.Resume)
		if cerr != nil {
			// A checkpoint this build cannot speak (future version, corrupt
			// bytes) degrades to an attributed session error, never a panic.
			fail(fmt.Errorf("node %d: decoding resume checkpoint: %w", init.NodeID, cerr))
			return
		}
		resume = &c
	}

	x, err := transport.NewTCP(transport.TCPOptions{
		ClusterID:   init.ClusterID,
		NodeID:      int(init.NodeID),
		Nodes:       int(init.Nodes),
		Peers:       init.PeerAddrs,
		Retry:       d.opt.Retry,
		IOTimeout:   d.opt.IOTimeout,
		WaitTimeout: d.opt.WaitTimeout,
	})
	if err != nil {
		fail(err)
		return
	}
	// stop is closed when the coordinator shuts the session down — or
	// abandons it (control connection breaks), or a re-Init for the same
	// (cluster, node) supersedes this registration. Closing the exchange
	// unblocks any collective this node is waiting in, so an aborted
	// session's survivors fail over quickly instead of waiting out their
	// timeouts.
	stop := make(chan struct{})
	var stopOnce sync.Once
	signalStop := func() {
		stopOnce.Do(func() {
			close(stop)
			x.Close()
		})
	}

	// Register the session, superseding a draining predecessor with the
	// same key: a coordinator that reconnects and re-Inits the same
	// logical node (reassign-to-same-daemon recovery) must not be wedged
	// by the previous attempt's goroutine still waiting out its teardown.
	// The predecessor is told to stop and this registration waits for it
	// to fully drain, so its peer exchange never shadows the new one.
	ds := &daemonSession{x: x, stop: signalStop, done: make(chan struct{})}
	key := sessionKey{init.ClusterID, init.NodeID}
	deadline := time.Now().Add(d.opt.WaitTimeout)
	for {
		d.mu.Lock()
		old := d.sessions[key]
		if old == nil {
			d.sessions[key] = ds
			d.mu.Unlock()
			break
		}
		d.mu.Unlock()
		d.opt.Logf("pmihp-node: session %x: node %d re-init supersedes a draining session", init.ClusterID, init.NodeID)
		old.stop()
		select {
		case <-old.done:
		case <-time.After(time.Until(deadline)):
			x.Close()
			fail(fmt.Errorf("cluster %x node %d: superseded session did not drain within %v", init.ClusterID, init.NodeID, d.opt.WaitTimeout))
			return
		}
	}
	defer func() {
		d.mu.Lock()
		if d.sessions[key] == ds {
			delete(d.sessions, key)
		}
		d.mu.Unlock()
		x.Close()
		close(ds.done)
	}()
	go func() {
		for {
			conn.SetReadDeadline(time.Now().Add(time.Hour))
			t, _, err := transport.ReadFrame(conn, nil)
			if err != nil || t == transport.MsgShutdown {
				signalStop()
				return
			}
		}
	}()

	// Heartbeat writer: the coordinator declares this node dead after a
	// configurable quiet interval, so beat for the whole session — mining
	// itself produces no control-plane traffic. Each beacon carries the
	// node's pass position (counted by the onPass hook below), which is
	// what the coordinator's straggler detector compares across the
	// fleet.
	var passes atomic.Int32
	interval := time.Duration(init.HeartbeatMillis) * time.Millisecond
	if interval <= 0 {
		interval = d.opt.HeartbeatInterval
	}
	go func() {
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				hb := transport.AppendHeartbeat(nil, transport.Heartbeat{Passes: passes.Load()})
				if write(transport.MsgHeartbeat, hb, d.opt.IOTimeout) != nil {
					signalStop()
					return
				}
			}
		}
	}()

	hooks := nodeHooks{
		resume: resume,
		obs:    d.opt.Obs,
		onPass: func() { passes.Add(1) },
	}
	if init.NodeID == 0 {
		hooks.progress = func(stage uint8, counts []uint32, segs [][]byte) {
			ck := transport.Checkpoint{
				ClusterID:    init.ClusterID,
				Nodes:        init.Nodes,
				Stage:        stage,
				GlobalCounts: counts,
				THTSegments:  segs,
			}
			if err := write(transport.MsgProgress, transport.AppendCheckpoint(nil, ck), d.opt.IOTimeout); err != nil {
				d.opt.Logf("pmihp-node: session %x: sending %s progress: %v", init.ClusterID, transport.StageName(stage), err)
			}
		}
	}

	from := "fresh"
	if resume != nil {
		from = "resume from " + transport.StageName(resume.Stage)
	}
	d.opt.Logf("pmihp-node: session %x: node %d/%d, %d docs, %s partitions (%s)",
		init.ClusterID, init.NodeID, init.Nodes, db.Len(), mining.Partitioner(init.Partitioner), from)
	denseThreshold := init.DenseThreshold
	if d.opt.DenseThresholdOverride > 0 {
		denseThreshold = d.opt.DenseThresholdOverride
	}
	outcome, err := runNode(x, db, NodeParams{
		TotalDocs:      int(init.TotalDocs),
		NumItems:       int(init.NumItems),
		GlobalMin:      int(init.GlobalMin),
		THTEntries:     int(init.THTEntries),
		PartitionSize:  int(init.PartitionSize),
		MaxK:           int(init.MaxK),
		Workers:        int(init.Workers),
		DenseThreshold: denseThreshold,
		Partitioner:    mining.Partitioner(init.Partitioner),
	}, hooks)
	if err != nil {
		fail(fmt.Errorf("node %d: %w", init.NodeID, err))
		// Keep the session registered until Shutdown so surviving peers'
		// retries meet a live (if failing) endpoint rather than a vanished
		// one; the coordinator aborts everyone on our ErrorMsg.
		<-stop
		return
	}

	done := transport.NodeDone{
		Node:         init.NodeID,
		Found:        outcome.Found,
		Stats:        x.Stats().Snapshot(),
		PhaseSeconds: outcome.PhaseSeconds,
		BusySeconds:  outcome.Miner.Work.Seconds() + outcome.Server.Work.Seconds(),
	}
	if init.NodeID == 0 {
		done.GlobalCounts = u32Counts(outcome.GlobalCounts)
	}
	if err := write(transport.MsgNodeDone, transport.AppendNodeDone(nil, done), d.opt.WaitTimeout); err != nil {
		d.opt.Logf("pmihp-node: session %x: sending done: %v", init.ClusterID, err)
		return
	}
	<-stop
	d.opt.Logf("pmihp-node: session %x: node %d finished", init.ClusterID, init.NodeID)
}

// ListenAndServe listens on addr (host:0 picks a free port), announces
// the bound address on announce in the exact form the spawner parses,
// and serves until the process exits.
func (d *Daemon) ListenAndServe(addr string, announce *log.Logger) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if announce != nil {
		announce.Printf("pmihp-node listening on %s", ln.Addr().String())
	}
	return d.Serve(ln)
}

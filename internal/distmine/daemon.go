package distmine

import (
	"bytes"
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"pmihp/internal/transport"
	"pmihp/internal/txdb"
)

// DaemonOptions tunes a node daemon.
type DaemonOptions struct {
	// IOTimeout bounds individual reads/writes; WaitTimeout bounds waits
	// for cluster-level progress (a peer reaching a collective, an Init
	// arriving for an early peer connection). Zeros select the transport
	// defaults (30s / 120s).
	IOTimeout   time.Duration
	WaitTimeout time.Duration
	// Retry bounds the exchange's dial/step retries.
	Retry transport.RetryPolicy
	// Logf, when non-nil, receives daemon lifecycle logs.
	Logf func(format string, args ...any)
}

// Daemon is a PMIHP worker process: one listener serving the
// coordinator's control plane and peers' exchange traffic, dispatched
// by each connection's Hello. A daemon can serve many mining sessions
// over its lifetime (sequentially or concurrently); sessions are keyed
// by the coordinator-chosen cluster id.
type Daemon struct {
	opt  DaemonOptions
	addr string

	mu       sync.Mutex
	sessions map[uint64]*transport.TCPExchange
}

// NewDaemon returns a daemon with the given options.
func NewDaemon(opt DaemonOptions) *Daemon {
	if opt.WaitTimeout <= 0 {
		opt.WaitTimeout = 120 * time.Second
	}
	if opt.IOTimeout <= 0 {
		opt.IOTimeout = 30 * time.Second
	}
	if opt.Logf == nil {
		opt.Logf = func(string, ...any) {}
	}
	return &Daemon{opt: opt, sessions: make(map[uint64]*transport.TCPExchange)}
}

// Serve accepts and dispatches connections until the listener closes.
func (d *Daemon) Serve(ln net.Listener) error {
	d.addr = ln.Addr().String()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		go d.handleConn(conn)
	}
}

// handleConn reads the Hello and routes the connection.
func (d *Daemon) handleConn(conn net.Conn) {
	conn.SetReadDeadline(time.Now().Add(d.opt.WaitTimeout))
	t, payload, err := transport.ReadFrame(conn, nil)
	if err != nil || t != transport.MsgHello {
		conn.Close()
		return
	}
	hello, err := transport.DecodeHello(payload)
	if err != nil {
		conn.Close()
		return
	}
	switch hello.Purpose {
	case transport.PurposeControl:
		d.handleControl(conn, hello)
	case transport.PurposeCube, transport.PurposePoll:
		// A peer may connect before this node's Init has been processed
		// (the coordinator initializes nodes one by one); wait for the
		// session to appear.
		x, err := d.exchange(hello.ClusterID)
		if err != nil {
			d.opt.Logf("pmihp-node: dropping peer conn for unknown cluster %x: %v", hello.ClusterID, err)
			conn.Close()
			return
		}
		x.HandlePeerConn(conn, hello)
	default:
		conn.Close()
	}
}

// exchange waits for the session with the given cluster id to be
// registered and returns its exchange.
func (d *Daemon) exchange(clusterID uint64) (*transport.TCPExchange, error) {
	deadline := time.Now().Add(d.opt.WaitTimeout)
	for {
		d.mu.Lock()
		x := d.sessions[clusterID]
		d.mu.Unlock()
		if x != nil {
			return x, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("no session for cluster %x after %v", clusterID, d.opt.WaitTimeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// handleControl runs one mining session driven by the coordinator:
// Init in, NodeDone (or ErrorMsg) out, Shutdown to finish.
func (d *Daemon) handleControl(conn net.Conn, hello transport.Hello) {
	defer conn.Close()
	fail := func(err error) {
		d.opt.Logf("pmihp-node: session %x: %v", hello.ClusterID, err)
		conn.SetWriteDeadline(time.Now().Add(d.opt.IOTimeout))
		transport.WriteFrame(conn, transport.MsgError,
			transport.AppendError(nil, transport.ErrorMsg{Text: err.Error()}), nil)
	}

	conn.SetReadDeadline(time.Now().Add(d.opt.WaitTimeout))
	t, payload, err := transport.ReadFrame(conn, nil)
	if err != nil {
		d.opt.Logf("pmihp-node: session %x: reading init: %v", hello.ClusterID, err)
		return
	}
	if t != transport.MsgInit {
		fail(fmt.Errorf("expected init, got message type %d", t))
		return
	}
	init, err := transport.DecodeInit(payload)
	if err != nil {
		fail(fmt.Errorf("bad init: %w", err))
		return
	}
	if init.ClusterID != hello.ClusterID {
		fail(fmt.Errorf("init cluster %x on control conn for %x", init.ClusterID, hello.ClusterID))
		return
	}
	db, err := txdb.ReadDB(bytes.NewReader(init.DB))
	if err != nil {
		fail(fmt.Errorf("decoding partition: %w", err))
		return
	}

	x, err := transport.NewTCP(transport.TCPOptions{
		ClusterID:   init.ClusterID,
		NodeID:      int(init.NodeID),
		Nodes:       int(init.Nodes),
		Peers:       init.PeerAddrs,
		Retry:       d.opt.Retry,
		IOTimeout:   d.opt.IOTimeout,
		WaitTimeout: d.opt.WaitTimeout,
	})
	if err != nil {
		fail(err)
		return
	}
	d.mu.Lock()
	if d.sessions[init.ClusterID] != nil {
		d.mu.Unlock()
		x.Close()
		fail(fmt.Errorf("cluster %x already has a session here", init.ClusterID))
		return
	}
	d.sessions[init.ClusterID] = x
	d.mu.Unlock()
	defer func() {
		d.mu.Lock()
		delete(d.sessions, init.ClusterID)
		d.mu.Unlock()
		x.Close()
	}()

	d.opt.Logf("pmihp-node: session %x: node %d/%d, %d docs", init.ClusterID, init.NodeID, init.Nodes, db.Len())
	outcome, err := runNode(x, db, NodeParams{
		TotalDocs:     int(init.TotalDocs),
		NumItems:      int(init.NumItems),
		GlobalMin:     int(init.GlobalMin),
		THTEntries:    int(init.THTEntries),
		PartitionSize: int(init.PartitionSize),
		MaxK:          int(init.MaxK),
		Workers:       int(init.Workers),
	})
	if err != nil {
		fail(fmt.Errorf("node %d: %w", init.NodeID, err))
		// Keep the session registered until Shutdown so surviving peers'
		// retries meet a live (if failing) endpoint rather than a vanished
		// one; the coordinator aborts everyone on our ErrorMsg.
		d.awaitShutdown(conn)
		return
	}

	done := transport.NodeDone{
		Node:         init.NodeID,
		Found:        outcome.Found,
		Stats:        x.Stats().Snapshot(),
		PhaseSeconds: outcome.PhaseSeconds,
	}
	if init.NodeID == 0 {
		done.GlobalCounts = make([]uint32, len(outcome.GlobalCounts))
		for i, c := range outcome.GlobalCounts {
			done.GlobalCounts[i] = uint32(c)
		}
	}
	conn.SetWriteDeadline(time.Now().Add(d.opt.WaitTimeout))
	if err := transport.WriteFrame(conn, transport.MsgNodeDone, transport.AppendNodeDone(nil, done), nil); err != nil {
		d.opt.Logf("pmihp-node: session %x: sending done: %v", init.ClusterID, err)
		return
	}
	d.awaitShutdown(conn)
	d.opt.Logf("pmihp-node: session %x: finished", init.ClusterID)
}

// awaitShutdown blocks until the coordinator's Shutdown (or the control
// connection drops).
func (d *Daemon) awaitShutdown(conn net.Conn) {
	conn.SetReadDeadline(time.Now().Add(d.opt.WaitTimeout))
	for {
		t, _, err := transport.ReadFrame(conn, nil)
		if err != nil || t == transport.MsgShutdown {
			return
		}
	}
}

// ListenAndServe listens on addr (host:0 picks a free port), announces
// the bound address on announce in the exact form the spawner parses,
// and serves until the process exits.
func (d *Daemon) ListenAndServe(addr string, announce *log.Logger) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if announce != nil {
		announce.Printf("pmihp-node listening on %s", ln.Addr().String())
	}
	return d.Serve(ln)
}

package distmine

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"

	"pmihp/internal/corpus"
	"pmihp/internal/mining"
	"pmihp/internal/obs"
)

// TestMetricsEndpointLiveCluster runs an 8-node loopback cluster with
// daemons and coordinator feeding one recorder behind a live HTTP
// endpoint — the -metrics-addr wiring — and checks that the endpoint
// (a) answers while the mine is in flight and (b) ends up reporting
// pass progress, per-node heartbeat liveness, collective spans, and
// held-bytes gauges for every node.
func TestMetricsEndpointLiveCluster(t *testing.T) {
	rec := obs.New(obs.Config{})
	addr, stop, err := obs.Serve("127.0.0.1:0", rec)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	const nodes = 8
	addrs := startDaemons(t, nodes, DaemonOptions{Obs: rec})
	db := buildDB(t, corpus.CorpusB(corpus.Small))

	var scrapes atomic.Int64
	done := make(chan struct{})
	scraper := make(chan struct{})
	go func() {
		defer close(scraper)
		for {
			select {
			case <-done:
				return
			default:
			}
			resp, gerr := http.Get("http://" + addr + "/metrics")
			if gerr == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				scrapes.Add(1)
			}
		}
	}()
	_, merr := MineCluster(db, ClusterConfig{Addrs: addrs, Retry: fastRetry, Obs: rec},
		mining.Options{MinSupCount: 2, MaxK: 3})
	close(done)
	<-scraper
	if merr != nil {
		t.Fatal(merr)
	}
	if scrapes.Load() == 0 {
		t.Fatal("metrics endpoint never answered during the mine")
	}

	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	body := string(raw)
	for _, want := range []string{
		"pmihp_passes_total",
		`pmihp_pass_current{node="0"}`,
		`pmihp_pass_current{node="7"}`,
		`pmihp_heartbeat_age_seconds{node="0"}`,
		`pmihp_heartbeat_age_seconds{node="7"}`,
		`pmihp_span_seconds_total{name="exchange:final"}`,
		`pmihp_peak_held_bytes{node="0"}`,
		`pmihp_tht_cascade_bytes{node="0"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("final /metrics scrape missing %q", want)
		}
	}

	resp, err = http.Get("http://" + addr + "/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	var snap obs.Snapshot
	jerr := json.NewDecoder(resp.Body).Decode(&snap)
	resp.Body.Close()
	if jerr != nil {
		t.Fatalf("/snapshot not JSON: %v", jerr)
	}
	if snap.Passes == 0 {
		t.Error("/snapshot reports no passes after a full mine")
	}
	if len(snap.BeatAge) != nodes {
		t.Errorf("/snapshot tracks %d heartbeats, want %d", len(snap.BeatAge), nodes)
	}
	if len(snap.PassK) != nodes {
		t.Errorf("/snapshot tracks pass progress for %d nodes, want %d", len(snap.PassK), nodes)
	}
}

package distmine

import (
	"fmt"
	"sync"
)

// ElasticControl lets a running MineCluster session change its logical
// node count mid-run. A Resize aborts the in-flight attempt (the same
// abort a death takes), and the session re-splits the database across
// the new roster at the last checkpoint barrier before resuming: a PMCK
// checkpoint at StageItemCounts carries only the all-reduced global
// item-count vector, which is partition-independent, so the repartition
// costs at most the work since that barrier (per-node THT segments
// cannot survive a roster change and are rebuilt). The frequent list is
// byte-identical across any sequence of resizes because core.MinePMIHP's
// output does not depend on the node count.
//
// One ElasticControl serves one session at a time; hand a fresh one to
// each MineCluster call.
type ElasticControl struct {
	mu    sync.Mutex
	want  []string // pending roster (nil: none)
	abort func()   // current attempt's abort, armed by runAttempt
}

// NewElasticControl returns a control ready to wire into a
// ClusterConfig.
func NewElasticControl() *ElasticControl { return &ElasticControl{} }

// Resize requests that the session re-split onto exactly addrs (one
// logical node per entry; an address may repeat to stack nodes on one
// daemon). Safe to call from any goroutine, including the session's own
// OnCheckpointStage callback. A later Resize before the session reaches
// the barrier replaces the earlier one; a Resize after the session
// completed is a no-op.
func (e *ElasticControl) Resize(addrs []string) error {
	if len(addrs) == 0 {
		return fmt.Errorf("distmine: resize to an empty roster")
	}
	e.mu.Lock()
	e.want = append([]string(nil), addrs...)
	abort := e.abort
	e.mu.Unlock()
	if abort != nil {
		abort()
	}
	return nil
}

// arm installs the running attempt's abort hook. A resize requested
// between attempts fires it immediately.
func (e *ElasticControl) arm(abort func()) {
	e.mu.Lock()
	e.abort = abort
	pending := e.want != nil
	e.mu.Unlock()
	if pending && abort != nil {
		abort()
	}
}

// pendingN reports the requested roster size (0: no pending resize).
func (e *ElasticControl) pendingN() int {
	if e == nil {
		return 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.want)
}

// take consumes the pending request.
func (e *ElasticControl) take() []string {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	w := e.want
	e.want = nil
	return w
}

// resizeError is runAttempt's report that the attempt was aborted by a
// pending elastic resize rather than by a death or a straggler.
type resizeError struct {
	n int
}

func (e *resizeError) Error() string {
	return fmt.Sprintf("elastic resize to %d logical nodes requested; aborting attempt", e.n)
}

package distmine

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestLivenessBasics: beats are recorded, deaths attribute the first
// cause, DeadNodes sorts ascending.
func TestLivenessBasics(t *testing.T) {
	l := NewLiveness(4)
	if !l.LastBeat(2).IsZero() {
		t.Fatal("unbeaten node should have a zero LastBeat")
	}
	before := time.Now()
	l.Beat(2)
	if got := l.LastBeat(2); got.Before(before) {
		t.Fatalf("LastBeat %v before Beat call at %v", got, before)
	}
	first := errors.New("first cause")
	if !l.MarkDead(3, first) {
		t.Fatal("first MarkDead should report true")
	}
	if l.MarkDead(3, errors.New("second cause")) {
		t.Fatal("second MarkDead should report false")
	}
	if got := l.Dead(3); got != first {
		t.Fatalf("Dead(3) = %v, want the first cause", got)
	}
	if l.Dead(0) != nil {
		t.Fatal("living node should have nil Dead")
	}
	l.MarkDead(1, errors.New("x"))
	dead := l.DeadNodes()
	if len(dead) != 2 || dead[0] != 1 || dead[1] != 3 {
		t.Fatalf("DeadNodes = %v, want [1 3]", dead)
	}
}

// TestLivenessConcurrent hammers the tracker from many goroutines the
// way coordinator readers do — run under -race this pins the locking.
func TestLivenessConcurrent(t *testing.T) {
	const nodes = 8
	l := NewLiveness(nodes)
	var wg sync.WaitGroup
	for i := 0; i < nodes; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				l.Beat(i)
				l.LastBeat(i)
			}
			if i%2 == 1 {
				l.MarkDead(i, fmt.Errorf("node %d died", i))
			}
		}(i)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				l.Dead(i)
				l.DeadNodes()
			}
		}(i)
	}
	wg.Wait()
	dead := l.DeadNodes()
	if len(dead) != nodes/2 {
		t.Fatalf("DeadNodes = %v, want the %d odd nodes", dead, nodes/2)
	}
	for _, n := range dead {
		if n%2 != 1 {
			t.Fatalf("even node %d marked dead", n)
		}
		want := fmt.Sprintf("node %d died", n)
		if got := l.Dead(n).Error(); got != want {
			t.Fatalf("Dead(%d) = %q, want %q", n, got, want)
		}
	}
}

// TestLivenessMarkDeadRace: exactly one of many racing MarkDead calls
// wins, and the stored cause is the winner's.
func TestLivenessMarkDeadRace(t *testing.T) {
	l := NewLiveness(1)
	const racers = 16
	wins := make([]bool, racers)
	causes := make([]error, racers)
	var wg sync.WaitGroup
	for i := 0; i < racers; i++ {
		causes[i] = fmt.Errorf("cause %d", i)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			wins[i] = l.MarkDead(0, causes[i])
		}(i)
	}
	wg.Wait()
	winner := -1
	for i, won := range wins {
		if won {
			if winner >= 0 {
				t.Fatalf("both %d and %d claim the MarkDead win", winner, i)
			}
			winner = i
		}
	}
	if winner < 0 {
		t.Fatal("no MarkDead call won")
	}
	if got := l.Dead(0); got != causes[winner] {
		t.Fatalf("stored cause %v is not the winner's (%v)", got, causes[winner])
	}
}

// TestParseFailurePolicy covers the flag surface.
func TestParseFailurePolicy(t *testing.T) {
	cases := []struct {
		in   string
		want FailurePolicy
		ok   bool
	}{
		{"", FailurePolicyAbort, true},
		{"abort", FailurePolicyAbort, true},
		{"reassign", FailurePolicyReassign, true},
		{"retry", "", false},
		{"Abort", "", false},
	}
	for _, c := range cases {
		got, err := ParseFailurePolicy(c.in)
		if c.ok != (err == nil) || got != c.want {
			t.Fatalf("ParseFailurePolicy(%q) = %v, %v; want %v, ok=%v", c.in, got, err, c.want, c.ok)
		}
	}
}

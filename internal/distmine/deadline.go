package distmine

import (
	"net"
	"time"

	"pmihp/internal/transport"
)

// writeFrameDeadline writes one frame under a fresh write deadline and
// clears the deadline afterwards. Control connections are persistent —
// heartbeats, progress checkpoints, and terminal reports all share them
// across the whole session — so a deadline armed for one guarded write
// must never linger: a stale deadline silently fails the next write
// minutes later on a slow cluster, with an error attributed to the
// wrong frame. Every control-plane write in the coordinator and daemon
// goes through this helper (regression-tested with a delayed reader in
// deadline_test.go).
func writeFrameDeadline(conn net.Conn, msgType uint8, payload []byte, timeout time.Duration) error {
	conn.SetWriteDeadline(time.Now().Add(timeout))
	err := transport.WriteFrame(conn, msgType, payload, nil)
	conn.SetWriteDeadline(time.Time{})
	return err
}

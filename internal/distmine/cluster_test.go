package distmine

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"pmihp/internal/corpus"
	"pmihp/internal/mining"
	"pmihp/internal/transport"
)

// nodeBin is the pmihp-node binary built once by TestMain for the
// multi-process tests.
var (
	nodeBin  string
	buildErr error
)

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "pmihp-node-bin")
	if err != nil {
		buildErr = err
	} else {
		bin := filepath.Join(dir, "pmihp-node")
		out, err := exec.Command("go", "build", "-o", bin, "pmihp/cmd/pmihp-node").CombinedOutput()
		if err != nil {
			buildErr = fmt.Errorf("go build pmihp/cmd/pmihp-node: %v\n%s", err, out)
		} else {
			nodeBin = bin
		}
	}
	code := m.Run()
	if dir != "" {
		os.RemoveAll(dir)
	}
	os.Exit(code)
}

var fastRetry = transport.RetryPolicy{Attempts: 4, BaseDelay: 5 * time.Millisecond, MaxDelay: 50 * time.Millisecond}

// startDaemons runs n node daemons in-process on loopback listeners and
// returns their addresses.
func startDaemons(t *testing.T, n int, opt DaemonOptions) []string {
	t.Helper()
	if opt.Retry.Attempts == 0 {
		opt.Retry = fastRetry
	}
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ln.Close() })
		d := NewDaemon(opt)
		go d.Serve(ln)
		addrs[i] = ln.Addr().String()
	}
	return addrs
}

func TestClusterMatchesPMIHP(t *testing.T) {
	for _, n := range []int{2, 3, 8} { // 3 exercises the star fallback
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			addrs := startDaemons(t, n, DaemonOptions{})
			db := buildDB(t, corpus.CorpusB(corpus.Small))
			opts := mining.Options{MinSupCount: 2, MaxK: 3}
			ref := pmihpRef(t, db, n, opts)
			got, err := MineCluster(db, ClusterConfig{Addrs: addrs, Retry: fastRetry}, opts)
			if err != nil {
				t.Fatal(err)
			}
			requireIdentical(t, ref, got)
			if got.Metrics.WireMessagesSent == 0 || got.Metrics.WireBytesSent == 0 {
				t.Fatalf("wire traffic not accounted: %+v", got.Metrics)
			}
		})
	}
}

// TestMultiProcessCluster is the headline integration test: real
// pmihp-node worker processes on loopback, driven end to end by the
// coordinator, must produce frequent itemsets byte-identical to the
// in-process PMIHP miner.
func TestMultiProcessCluster(t *testing.T) {
	if nodeBin == "" {
		t.Fatalf("pmihp-node binary unavailable: %v", buildErr)
	}
	for _, n := range []int{2, 8} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			addrs, stop, err := SpawnNodes(nodeBin, n, os.Stderr)
			if err != nil {
				t.Fatal(err)
			}
			defer stop()
			db := buildDB(t, corpus.CorpusB(corpus.Small))
			opts := mining.Options{MinSupCount: 2, MaxK: 3}
			ref := pmihpRef(t, db, n, opts)
			got, err := MineCluster(db, ClusterConfig{Addrs: addrs, Retry: fastRetry}, opts)
			if err != nil {
				t.Fatal(err)
			}
			requireIdentical(t, ref, got)
		})
	}
}

// flakyProxy fronts one node's address and kills the first `kills`
// peer (cube/poll) connections right after their Hello, leaving the
// coordinator's control connection alone. It decodes each connection's
// Hello frame to tell the two apart.
type flakyProxy struct {
	ln     net.Listener
	target string
	mu     sync.Mutex
	kills  int
	killed int
}

func startFlakyProxy(t *testing.T, target string, kills int) *flakyProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	p := &flakyProxy{ln: ln, target: target, kills: kills}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go p.handle(c)
		}
	}()
	return p
}

func (p *flakyProxy) addr() string { return p.ln.Addr().String() }

func (p *flakyProxy) handle(c net.Conn) {
	defer c.Close()
	var hdr [6]byte
	if _, err := io.ReadFull(c, hdr[:]); err != nil {
		return
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	if n > 1024 {
		return
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(c, payload); err != nil {
		return
	}
	h, err := transport.DecodeHello(payload)
	if err != nil {
		return
	}
	if h.Purpose != transport.PurposeControl {
		p.mu.Lock()
		kill := p.killed < p.kills
		if kill {
			p.killed++
		}
		p.mu.Unlock()
		if kill {
			return // drop the connection mid-handshake
		}
	}
	up, err := net.Dial("tcp", p.target)
	if err != nil {
		return
	}
	defer up.Close()
	up.Write(hdr[:])
	up.Write(payload)
	go func() {
		io.Copy(up, c)
		if tc, ok := up.(*net.TCPConn); ok {
			tc.CloseWrite()
		}
	}()
	io.Copy(c, up)
}

// TestClusterRecoversFromKilledConns kills one node's first few peer
// connections mid-exchange; retry/backoff must recover and the result
// must still be byte-identical.
func TestClusterRecoversFromKilledConns(t *testing.T) {
	addrs := startDaemons(t, 2, DaemonOptions{})
	proxy := startFlakyProxy(t, addrs[1], 2)
	addrs[1] = proxy.addr()

	db := buildDB(t, corpus.CorpusB(corpus.Small))
	opts := mining.Options{MinSupCount: 2, MaxK: 3}
	ref := pmihpRef(t, db, 2, opts)
	got, err := MineCluster(db, ClusterConfig{Addrs: addrs, Retry: fastRetry}, opts)
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, ref, got)
	if got.Metrics.WireRetries == 0 {
		t.Fatalf("expected retries after killed connections, stats: %+v", got.Metrics)
	}
	proxy.mu.Lock()
	killed := proxy.killed
	proxy.mu.Unlock()
	if killed != 2 {
		t.Fatalf("proxy killed %d connections, want 2", killed)
	}
}

// TestClusterPeerRetriesExhausted kills every peer connection to one
// node; the session must fail with a clean, attributed error rather
// than hang or panic.
func TestClusterPeerRetriesExhausted(t *testing.T) {
	opt := DaemonOptions{
		Retry:       transport.RetryPolicy{Attempts: 2, BaseDelay: 1 * time.Millisecond, MaxDelay: 5 * time.Millisecond},
		WaitTimeout: 2 * time.Second,
	}
	addrs := startDaemons(t, 2, opt)
	proxy := startFlakyProxy(t, addrs[1], 1<<30)
	addrs[1] = proxy.addr()

	db := buildDB(t, corpus.CorpusB(corpus.Small))
	_, err := MineCluster(db, ClusterConfig{
		Addrs:       addrs,
		Retry:       fastRetry,
		MineTimeout: 30 * time.Second,
	}, mining.Options{MinSupCount: 2, MaxK: 3})
	if err == nil {
		t.Fatal("expected failure with all peer connections killed")
	}
	if !strings.Contains(err.Error(), "all-gather") || !strings.Contains(err.Error(), "failed") {
		t.Fatalf("error not attributed to the failing exchange: %v", err)
	}
}

// deadAddr returns a loopback address nobody is listening on.
func deadAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestClusterReassignsToSurvivors: with failure-policy reassign, a dead
// daemon's logical node moves to a surviving daemon (which then hosts
// two logical nodes of the session) and the result stays byte-identical,
// with the failover accounted in the metrics.
func TestClusterReassignsToSurvivors(t *testing.T) {
	addrs := startDaemons(t, 3, DaemonOptions{})
	addrs[2] = deadAddr(t) // node 2's daemon is dead from the start

	db := buildDB(t, corpus.CorpusB(corpus.Small))
	opts := mining.Options{MinSupCount: 2, MaxK: 3}
	ref := pmihpRef(t, db, 3, opts)
	got, err := MineCluster(db, ClusterConfig{
		Addrs:         addrs,
		Retry:         transport.RetryPolicy{Attempts: 2, BaseDelay: 1 * time.Millisecond, MaxDelay: 5 * time.Millisecond},
		FailurePolicy: FailurePolicyReassign,
		Logf:          t.Logf,
	}, opts)
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, ref, got)
	if got.Metrics.Failovers != 1 || got.Metrics.ReassignedPartitions != 1 {
		t.Fatalf("failovers=%d reassigned=%d, want 1/1", got.Metrics.Failovers, got.Metrics.ReassignedPartitions)
	}
	if got.Metrics.RecoverySeconds <= 0 {
		t.Fatalf("recovery time not accounted: %+v", got.Metrics)
	}
}

// TestClusterReassignsToRespawned: with a Respawn hook, the dead
// daemon's logical node goes to a freshly spawned replacement instead
// of doubling up on a survivor.
func TestClusterReassignsToRespawned(t *testing.T) {
	addrs := startDaemons(t, 2, DaemonOptions{})
	addrs[1] = deadAddr(t)

	respawns := 0
	respawn := func() (string, error) {
		respawns++
		return startDaemons(t, 1, DaemonOptions{})[0], nil
	}
	db := buildDB(t, corpus.CorpusB(corpus.Small))
	opts := mining.Options{MinSupCount: 2, MaxK: 3}
	ref := pmihpRef(t, db, 2, opts)
	got, err := MineCluster(db, ClusterConfig{
		Addrs:         addrs,
		Retry:         transport.RetryPolicy{Attempts: 2, BaseDelay: 1 * time.Millisecond, MaxDelay: 5 * time.Millisecond},
		FailurePolicy: FailurePolicyReassign,
		Respawn:       respawn,
		Logf:          t.Logf,
	}, opts)
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, ref, got)
	if respawns != 1 {
		t.Fatalf("respawn called %d times, want 1", respawns)
	}
	if got.Metrics.Failovers != 1 || got.Metrics.ReassignedPartitions != 1 {
		t.Fatalf("failovers=%d reassigned=%d, want 1/1", got.Metrics.Failovers, got.Metrics.ReassignedPartitions)
	}
}

// TestClusterAllDaemonsDead: reassignment runs out of survivors and the
// session fails with an attributed error instead of looping.
func TestClusterAllDaemonsDead(t *testing.T) {
	addrs := []string{deadAddr(t), deadAddr(t)}
	db := buildDB(t, corpus.CorpusB(corpus.Small))
	_, err := MineCluster(db, ClusterConfig{
		Addrs:         addrs,
		Retry:         transport.RetryPolicy{Attempts: 2, BaseDelay: 1 * time.Millisecond, MaxDelay: 5 * time.Millisecond},
		FailurePolicy: FailurePolicyReassign,
	}, mining.Options{MinSupCount: 2})
	if err == nil {
		t.Fatal("expected failure with every daemon dead")
	}
	if !strings.Contains(err.Error(), "control dial") {
		t.Fatalf("error not attributed: %v", err)
	}
}

// silentDaemon accepts connections and reads frames but never writes —
// a worker that is alive at the TCP level yet stuck. The coordinator
// must declare it dead by heartbeat timeout, not hang.
func silentDaemon(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go io.Copy(io.Discard, c)
		}
	}()
	return ln.Addr().String()
}

// TestClusterHeartbeatTimeout: a stuck (silent) worker is detected by
// the missing heartbeats and attributed in the error under the abort
// policy.
func TestClusterHeartbeatTimeout(t *testing.T) {
	addrs := startDaemons(t, 2, DaemonOptions{HeartbeatInterval: 50 * time.Millisecond})
	addrs[1] = silentDaemon(t)

	db := buildDB(t, corpus.CorpusB(corpus.Small))
	_, err := MineCluster(db, ClusterConfig{
		Addrs:             addrs,
		Retry:             fastRetry,
		HeartbeatInterval: 50 * time.Millisecond,
		HeartbeatTimeout:  400 * time.Millisecond,
		MineTimeout:       30 * time.Second,
	}, mining.Options{MinSupCount: 2, MaxK: 3})
	if err == nil {
		t.Fatal("expected heartbeat-timeout failure against a silent worker")
	}
	if !strings.Contains(err.Error(), "node 1") || !strings.Contains(err.Error(), "no heartbeat") {
		t.Fatalf("error not attributed to the silent worker: %v", err)
	}
}

// TestClusterDeadNodesFail points the coordinator at addresses nobody
// is listening on; it must return a clean attributed dial error after
// exhausting retries.
func TestClusterDeadNodesFail(t *testing.T) {
	dead := make([]string, 2)
	for i := range dead {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		dead[i] = ln.Addr().String()
		ln.Close()
	}
	db := buildDB(t, corpus.CorpusB(corpus.Small))
	_, err := MineCluster(db, ClusterConfig{
		Addrs: dead,
		Retry: transport.RetryPolicy{Attempts: 2, BaseDelay: 1 * time.Millisecond, MaxDelay: 5 * time.Millisecond},
	}, mining.Options{MinSupCount: 2})
	if err == nil {
		t.Fatal("expected dial failure against dead addresses")
	}
	if !strings.Contains(err.Error(), "node 0") || !strings.Contains(err.Error(), "control dial") {
		t.Fatalf("error not attributed: %v", err)
	}
}

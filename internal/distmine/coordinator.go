package distmine

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"pmihp/internal/core"
	"pmihp/internal/itemset"
	"pmihp/internal/mining"
	"pmihp/internal/obs"
	"pmihp/internal/transport"
	"pmihp/internal/txdb"
)

// FailurePolicy selects what the coordinator does when a worker dies
// mid-session.
type FailurePolicy string

const (
	// FailurePolicyAbort fails the whole session fast with an error
	// attributing the dead node. This is the default.
	FailurePolicyAbort FailurePolicy = "abort"
	// FailurePolicyReassign moves the dead daemon's logical nodes (their
	// transaction shards keep their original chronological partitioning)
	// to surviving or respawned daemons and restarts the session from the
	// last checkpointed pass. The final frequent list is byte-identical
	// to an undisturbed run.
	FailurePolicyReassign FailurePolicy = "reassign"
)

// ParseFailurePolicy parses a -failure-policy flag value. Empty selects
// the default (abort).
func ParseFailurePolicy(s string) (FailurePolicy, error) {
	switch FailurePolicy(s) {
	case "":
		return FailurePolicyAbort, nil
	case FailurePolicyAbort, FailurePolicyReassign:
		return FailurePolicy(s), nil
	}
	return "", fmt.Errorf("unknown failure policy %q (want %q or %q)", s, FailurePolicyAbort, FailurePolicyReassign)
}

// ClusterConfig configures a coordinator-driven multi-process run.
type ClusterConfig struct {
	// Addrs lists the node daemons' listen addresses, one per logical
	// node; the cluster size is len(Addrs).
	Addrs []string
	// Retry bounds control-plane dials; zero selects the default policy.
	Retry transport.RetryPolicy
	// IOTimeout bounds individual control reads/writes (zero: 30s).
	// MineTimeout bounds the whole mining session, recovery attempts
	// included (zero: 10min).
	IOTimeout   time.Duration
	MineTimeout time.Duration
	// FailurePolicy selects abort (default) or reassign-and-resume.
	FailurePolicy FailurePolicy
	// HeartbeatInterval is how often daemons beat on their control
	// connections (zero: 500ms). HeartbeatTimeout is the quiet interval
	// after which the coordinator declares a node dead (zero: 6x the
	// interval).
	HeartbeatInterval time.Duration
	HeartbeatTimeout  time.Duration
	// StragglerLagPasses, when positive, arms the coordinator's straggler
	// detector: heartbeats carry each node's local counting pass
	// position, and when a node falls this many passes behind the fleet's
	// most advanced node, the coordinator aborts the attempt and re-hosts
	// the lagging daemon's logical nodes on other alive daemons, resuming
	// from the last checkpoint — the same machinery a death takes, except
	// the slow daemon stays alive (it is merely excluded as a target) and
	// the event counts in Metrics.RebalancedPartitions, not Failovers.
	// Each host is rebalanced away from at most once per session, which
	// bounds the loop; a node still at pass 0 (receiving its partition)
	// never counts as lagging, and the lag must persist for
	// stragglerSustainTicks heartbeat intervals before the detector
	// fires. The logical partitioning never changes, so the frequent
	// list stays byte-identical whether or not a re-split occurs. 0 (the
	// default) disables detection.
	StragglerLagPasses int
	// CheckpointDir, when non-empty, receives the session's checkpoint
	// file (session-<id>.ckpt, atomically replaced as passes complete) so
	// a future coordinator process could inspect or reuse it. Resume
	// itself works from the in-memory checkpoint and does not need this.
	CheckpointDir string
	// MaxFailovers caps recoveries before the coordinator gives up
	// (zero: n-1 — at least one original daemon must survive).
	MaxFailovers int
	// Respawn, when non-nil, starts a replacement daemon and returns its
	// address; a dead daemon's logical nodes move there instead of
	// doubling up on survivors. Used by pmihp-mine -spawn.
	Respawn func() (string, error)
	// Elastic, when non-nil, lets the session's owner change the logical
	// node count mid-run (see ElasticControl): the attempt aborts, the
	// database is re-split across the new roster, and mining resumes from
	// the last partition-independent checkpoint barrier.
	Elastic *ElasticControl
	// AcquireWorkers, when non-nil, hands the straggler detector a way to
	// grow instead of migrate: called with the maximum number of extra
	// workers that make sense, it returns the addresses of idle pool
	// workers this session may keep until it completes (possibly none).
	// When it returns workers, a detected straggler triggers an elastic
	// re-split across the grown roster — the slow daemon keeps a smaller
	// share — instead of draining the straggler onto already-busy peers.
	AcquireWorkers func(max int) []string
	// OnCheckpointStage, when non-nil, is called (from the control-plane
	// reader) each time the session's checkpoint advances to a new stage —
	// the deterministic hook schedulers use to trigger mid-run resizes at
	// a barrier.
	OnCheckpointStage func(stage uint8)
	// Logf, when non-nil, receives recovery lifecycle logs.
	Logf func(format string, args ...any)
	// Obs, when non-nil, receives the coordinator's session telemetry:
	// per-node heartbeat liveness, checkpoint-stage and failover gauges,
	// checkpoint-write and recovery-attempt spans. Worker pass events stay
	// on the daemons' own recorders — they are separate processes.
	Obs *obs.Recorder
}

// MineCluster mines db across the node daemons listed in cfg: it splits
// the database under opts.Partitioner (equal document counts or equal
// estimated work, both chronological), ships each logical node its partition
// with the resolved session parameters, lets the nodes run the PMIHP
// protocol among themselves over their peer exchanges, and merges their
// reports. The frequent list is byte-identical to core.MinePMIHP's in
// exact mode on the same inputs — including across failovers, because
// reassignment never changes the partitioning, only which daemon hosts
// a partition.
func MineCluster(db *txdb.DB, cfg ClusterConfig, opts mining.Options) (*Result, error) {
	n := len(cfg.Addrs)
	if n == 0 {
		return nil, fmt.Errorf("distmine: no node addresses")
	}
	if cfg.IOTimeout <= 0 {
		cfg.IOTimeout = 30 * time.Second
	}
	if cfg.MineTimeout <= 0 {
		cfg.MineTimeout = 10 * time.Minute
	}
	if cfg.FailurePolicy == "" {
		cfg.FailurePolicy = FailurePolicyAbort
	}
	if cfg.HeartbeatInterval <= 0 {
		cfg.HeartbeatInterval = 500 * time.Millisecond
	}
	if cfg.HeartbeatTimeout <= 0 {
		cfg.HeartbeatTimeout = 6 * cfg.HeartbeatInterval
	}
	if cfg.MaxFailovers <= 0 {
		cfg.MaxFailovers = n - 1
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	cfg.Retry = cfg.Retry.WithDefaults()
	p, opts := params(db, opts)
	parts := splitParts(db, n, p.Partitioner)

	// Encode every partition once; recovery attempts re-ship the same
	// bytes, which is what keeps reassignment byte-identical: the
	// partitioning is fixed for the session's lifetime.
	partBytes := make([][]byte, n)
	for i := 0; i < n; i++ {
		var buf bytes.Buffer
		if err := parts[i].Encode(&buf); err != nil {
			return nil, fmt.Errorf("distmine: node %d: encoding partition: %w", i, err)
		}
		partBytes[i] = buf.Bytes()
	}

	baseID, err := randomID()
	if err != nil {
		return nil, fmt.Errorf("distmine: cluster id: %w", err)
	}
	// A file already at this session's path can only be a dead
	// predecessor's leftovers: ids are 64-bit random, so a collision with
	// a checkpoint no coordinator retired is the one way a brand-new
	// session could resume from a dead session's state. Remove it before
	// anything can read it.
	retireStaleCheckpoint(cfg.CheckpointDir, baseID, cfg.Logf)

	s := &session{
		cfg:       cfg,
		db:        db,
		p:         p,
		parts:     parts,
		partBytes: partBytes,
		baseID:    baseID,
		roster:    append([]string(nil), cfg.Addrs...),
		alive:     make([]bool, n),
		hostOf:    make([]int, n),
		deadline:  time.Now().Add(cfg.MineTimeout),

		rebalancedHost: make(map[string]bool),
	}
	for i := range s.alive {
		s.alive[i] = true
	}
	for i := range s.hostOf {
		s.hostOf[i] = i
	}
	s.ckpt = transport.Checkpoint{ClusterID: baseID, Nodes: int32(n), Stage: transport.StageNone}
	cfg.Obs.SetDaemon("coordinator")
	// The session's checkpoint file may still be mid-write when the last
	// attempt ends; external tooling reads it, so settle it before
	// returning.
	defer s.ckptWrites.Wait()

	for {
		// A resize requested between attempts (or the one that aborted the
		// last attempt) is applied here, at the recovery barrier: re-split
		// the database across the new roster and resume from the demoted
		// checkpoint.
		if addrs := cfg.Elastic.take(); addrs != nil {
			if rerr := s.applyResize(addrs); rerr != nil {
				return nil, rerr
			}
		}
		res, deaths, err := s.runAttempt()
		if err == nil {
			res.Metrics.Failovers = s.failovers
			res.Metrics.ReassignedPartitions = s.reassigned
			res.Metrics.RebalancedPartitions = s.rebalances
			res.Metrics.ElasticResizes = s.resizes
			res.Metrics.RecoverySeconds = s.recoverySeconds
			s.ckptWrites.Wait()
			s.retireCheckpointFile()
			return res, nil
		}
		var rz *resizeError
		if errors.As(err, &rz) {
			// Not a failure: the session's owner asked for a new node
			// count. The loop head applies it.
			t0 := time.Now()
			cfg.Logf("distmine: %v", err)
			if derr := s.finishRecovery(t0, err); derr != nil {
				return nil, derr
			}
			continue
		}
		var strag *stragglerError
		if errors.As(err, &strag) {
			// A straggler re-split: the lagging daemon is alive, just slow.
			// With idle pool workers available (AcquireWorkers), grow the
			// roster and re-split so the slow daemon keeps a smaller share;
			// otherwise re-host its logical nodes on other alive daemons.
			// Either way it resumes from the checkpoint — not a failover, so
			// it neither counts against MaxFailovers nor requires
			// FailurePolicyReassign (the detector is armed by its own knob).
			t0 := time.Now()
			cfg.Logf("distmine: %v", err)
			if rerr := s.growOrRebalance(strag); rerr != nil {
				return nil, rerr
			}
			cfg.Obs.SetGauge("rebalances_total", int64(s.rebalances))
			if derr := s.finishRecovery(t0, err); derr != nil {
				return nil, derr
			}
			continue
		}
		if len(deaths) == 0 || cfg.FailurePolicy != FailurePolicyReassign {
			return nil, err
		}
		t0 := time.Now()
		s.failovers += len(deaths)
		cfg.Obs.SetGauge("failovers_total", int64(s.failovers))
		cfg.Logf("distmine: failover %d: %v", s.failovers, err)
		if s.failovers > cfg.MaxFailovers {
			return nil, fmt.Errorf("distmine: giving up after %d failovers: %w", s.failovers, err)
		}
		if rerr := s.reassign(deaths, err); rerr != nil {
			return nil, rerr
		}
		if derr := s.finishRecovery(t0, err); derr != nil {
			return nil, derr
		}
	}
}

// finishRecovery closes one recovery window. The deadline check comes
// FIRST: a recovery that overran the session deadline is attributed
// entirely to the returned error and never accumulated into
// RecoverySeconds, so the elapsed time cannot be double-counted into
// both the metric and the error path. Only a recovery the session
// survives adds to RecoverySeconds — which keeps the reported metric
// the recovery time of the run that actually produced a result, and
// keeps RecoverySeconds disjoint from WireSeconds (WireSeconds sums the
// successful attempt's exchange phases; recovery windows sit strictly
// between attempts).
func (s *session) finishRecovery(t0 time.Time, cause error) error {
	elapsed := time.Since(t0).Seconds()
	if time.Now().After(s.deadline) {
		s.cfg.Obs.RecordSpan(obs.SpanEvent{Name: "recovery:attempt", Node: -1, Seconds: elapsed, Err: cause.Error()})
		return fmt.Errorf("distmine: session deadline passed during recovery (%.3fs recovering, not counted): %w", elapsed, cause)
	}
	s.recoverySeconds += elapsed
	s.cfg.Obs.RecordSpan(obs.SpanEvent{Name: "recovery:attempt", Node: -1, Seconds: elapsed})
	return nil
}

func randomID() (uint64, error) {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

// session is the coordinator's state across recovery attempts.
type session struct {
	cfg ClusterConfig
	// db is the whole database, retained so an elastic resize can
	// re-split it across a new roster mid-run.
	db        *txdb.DB
	p         NodeParams
	parts     []*txdb.DB
	partBytes [][]byte
	baseID    uint64
	deadline  time.Time

	// roster grows as daemons are respawned; alive marks which entries
	// still accept work; hostOf maps each logical node to its current
	// roster entry. The logical partitioning only changes at an elastic
	// resize (which rebuilds all three together with the partitions).
	roster []string
	alive  []bool
	hostOf []int

	// ckpt is the most advanced checkpoint node 0 has reported; guarded
	// by ckptMu because reader goroutines update it mid-attempt.
	ckptMu sync.Mutex
	ckpt   transport.Checkpoint

	// rebalancedHost marks daemon addresses already handled by the
	// straggler detector — each at most once per session, which bounds
	// the detect/re-split loop even if the replacement hosts are slow
	// too. Keyed by address, not roster index, because a resize rebuilds
	// the roster.
	rebalancedHost map[string]bool

	// Checkpoint persistence runs off the control-plane reader: a slow
	// fsync must not stall node 0's heartbeat processing, or the
	// straggler detector would mistake the coordinator's own disk for a
	// lagging node. ckptFileMu serializes the writers and ckptFileStage
	// keeps the on-disk file stage-monotonic; ckptWrites lets MineCluster
	// drain pending writes before returning.
	ckptWrites    sync.WaitGroup
	ckptFileMu    sync.Mutex
	ckptFileStage uint8

	failovers       int
	reassigned      int
	rebalances      int
	resizes         int
	recoverySeconds float64
}

// applyResize re-splits the database across a new roster of n' daemons
// and demotes the session checkpoint to the deepest stage that survives
// a repartition: StageItemCounts carries only the all-reduced global
// item-count vector, which no partitioning can change, while THT
// segments are per-partition and must be rebuilt. The next attempt runs
// the resumed protocol on the new roster; the frequent list stays
// byte-identical because core.MinePMIHP's output does not depend on the
// node count.
func (s *session) applyResize(addrs []string) error {
	n := len(addrs)
	if n == 0 {
		return fmt.Errorf("distmine: resize to an empty roster")
	}
	// Settle in-flight checkpoint-file writes before demoting the file
	// stage, so no stale old-roster write can land after the reset.
	s.ckptWrites.Wait()

	// A resize exists to rebalance, so the re-split always cuts by
	// estimated counting work (the skew-aware splitter) regardless of the
	// partitioner the session started under: a statically mis-partitioned
	// session comes out of the barrier balanced, not re-skewed across more
	// nodes. Placement never changes the frequent itemsets, so this is
	// invisible in the results.
	parts := splitParts(s.db, n, mining.PartitionByWork)
	partBytes := make([][]byte, n)
	for i := 0; i < n; i++ {
		var buf bytes.Buffer
		if err := parts[i].Encode(&buf); err != nil {
			return fmt.Errorf("distmine: resize: node %d: encoding partition: %w", i, err)
		}
		partBytes[i] = buf.Bytes()
	}
	s.parts, s.partBytes = parts, partBytes
	s.roster = append([]string(nil), addrs...)
	s.alive = make([]bool, n)
	s.hostOf = make([]int, n)
	for i := range s.alive {
		s.alive[i] = true
		s.hostOf[i] = i
	}

	s.ckptMu.Lock()
	demoted := transport.Checkpoint{ClusterID: s.baseID, Nodes: int32(n), Stage: transport.StageNone}
	if s.ckpt.Stage >= transport.StageItemCounts {
		demoted.Stage = transport.StageItemCounts
		demoted.GlobalCounts = s.ckpt.GlobalCounts
	}
	s.ckpt = demoted
	s.ckptMu.Unlock()
	s.ckptFileMu.Lock()
	// Let the new roster's checkpoints replace the retired partitioning's
	// file even though its stage may have been deeper.
	s.ckptFileStage = demoted.Stage
	s.ckptFileMu.Unlock()

	s.resizes++
	s.cfg.Logf("distmine: session %016x resized to %d logical nodes, resuming from %s",
		s.baseID, n, transport.StageName(demoted.Stage))
	s.cfg.Obs.SetGauge("cluster_nodes", int64(n))
	s.cfg.Obs.SetGauge("resizes_total", int64(s.resizes))
	return nil
}

// growOrRebalance handles a detected straggler. With idle pool workers
// on offer it grows the roster — every alive daemon currently hosting
// work keeps a (smaller) share, the idle workers take the rest — via the
// elastic re-split. Without them it falls back to migrating the slow
// daemon's partitions onto already-busy survivors.
func (s *session) growOrRebalance(e *stragglerError) error {
	if s.cfg.AcquireWorkers != nil {
		if extra := s.cfg.AcquireWorkers(len(s.hostOf)); len(extra) > 0 {
			s.rebalancedHost[e.addr] = true
			hosting := make(map[int]bool)
			for _, host := range s.hostOf {
				hosting[host] = true
			}
			var addrs []string
			for r, a := range s.roster {
				if s.alive[r] && hosting[r] {
					addrs = append(addrs, a)
				}
			}
			addrs = append(addrs, extra...)
			s.cfg.Logf("distmine: straggler %s: growing onto %d idle pool workers (re-split %d ways)",
				e.addr, len(extra), len(addrs))
			return s.applyResize(addrs)
		}
	}
	return s.rebalanceStraggler(e)
}

// checkpointPath is the session checkpoint file's location under dir.
func checkpointPath(dir string, id uint64) string {
	return filepath.Join(dir, fmt.Sprintf("session-%016x.ckpt", id))
}

// retireStaleCheckpoint removes a leftover checkpoint file matching a
// brand-new session's id. Only a dead predecessor with a colliding
// random id could have left it, and resuming from a dead session's
// state must never happen.
func retireStaleCheckpoint(dir string, id uint64, logf func(format string, args ...any)) {
	if dir == "" {
		return
	}
	path := checkpointPath(dir, id)
	if _, err := os.Stat(path); err != nil {
		return
	}
	logf("distmine: session %016x: removing stale checkpoint %s (id collision with an unretired earlier session)", id, path)
	if err := os.Remove(path); err != nil {
		logf("distmine: removing stale checkpoint: %v", err)
	}
}

// retireCheckpointFile removes the session's checkpoint file after a
// clean completion; a shared checkpoint directory holds files only for
// sessions that are still running or died unrecovered.
func (s *session) retireCheckpointFile() {
	if s.cfg.CheckpointDir == "" {
		return
	}
	if err := os.Remove(checkpointPath(s.cfg.CheckpointDir, s.baseID)); err != nil && !os.IsNotExist(err) {
		s.cfg.Logf("distmine: retiring session checkpoint: %v", err)
	}
}

// stragglerSustainTicks is how many consecutive watchdog ticks (one per
// heartbeat interval) a node must stay beyond the lag threshold before
// the detector fires. A single stale beacon — a node observed mid-burst
// that catches up by the next tick — never triggers a re-split.
const stragglerSustainTicks = 4

// stragglerError is runAttempt's report that the attempt was aborted by
// the straggler detector rather than by a death: node (on roster entry
// host) lagged the fleet's most advanced pass position by lag passes.
type stragglerError struct {
	node, host int
	addr       string
	lag        int
}

func (e *stragglerError) Error() string {
	return fmt.Sprintf("straggler: node %d (%s) lags the fleet by %d passes", e.node, e.addr, e.lag)
}

// rebalanceStraggler re-hosts every logical node of the straggling
// roster entry onto other alive daemons. The slow daemon stays alive and
// keeps its daemon process — only its partitions move — and it is never
// chosen as a target again this session.
func (s *session) rebalanceStraggler(e *stragglerError) error {
	s.rebalancedHost[e.addr] = true
	for node, host := range s.hostOf {
		if host != e.host {
			continue
		}
		target := s.leastLoadedAlive(e.host)
		if target < 0 {
			return fmt.Errorf("distmine: no other daemon to rebalance straggler node %d to: %w", node, e)
		}
		s.hostOf[node] = target
		s.rebalances++
		s.cfg.Logf("distmine: rebalanced node %d (%s lagging %d passes) to %s, resuming from %s",
			node, s.roster[e.host], e.lag, s.roster[target], transport.StageName(s.checkpoint().Stage))
	}
	return nil
}

// reassign moves the dead roster entries' logical nodes to replacements
// (respawned daemons when possible, otherwise least-loaded survivors).
// cause is the attempt's error, kept for context in follow-on failures.
func (s *session) reassign(deaths []int, cause error) error {
	for _, r := range deaths {
		s.alive[r] = false
	}
	for _, r := range deaths {
		var orphans []int
		for node, host := range s.hostOf {
			if host == r {
				orphans = append(orphans, node)
			}
		}
		if len(orphans) == 0 {
			continue
		}
		target := -1
		if s.cfg.Respawn != nil {
			addr, err := s.cfg.Respawn()
			if err != nil {
				s.cfg.Logf("distmine: respawn failed (%v), reassigning to survivors", err)
			} else {
				s.roster = append(s.roster, addr)
				s.alive = append(s.alive, true)
				target = len(s.roster) - 1
			}
		}
		for _, node := range orphans {
			host := target
			if host < 0 {
				host = s.leastLoadedAlive(-1)
				if host < 0 {
					return fmt.Errorf("distmine: no surviving daemons to reassign node %d to: %w", node, cause)
				}
			}
			s.hostOf[node] = host
			s.reassigned++
			s.cfg.Logf("distmine: reassigned node %d (%s dead) to %s, resuming from %s",
				node, s.roster[r], s.roster[host], transport.StageName(s.checkpoint().Stage))
		}
	}
	return nil
}

// leastLoadedAlive returns the alive roster entry hosting the fewest
// logical nodes (lowest index breaks ties), or -1 if none qualify.
// except, when >= 0, excludes that entry — the straggler rebalance must
// not hand partitions back to the host it is draining.
//
// The load map deliberately counts every hostOf entry, including
// partitions still attributed to dead hosts mid-recovery: those entries
// never inflate an alive candidate (dead and excepted hosts are skipped
// in the selection loop below), and reassign moves orphans one at a
// time, recomputing the load after each placement, so partitions not
// yet moved stay attributed to their dead host rather than being
// pre-counted against any survivor. Live placement decisions therefore
// only ever weigh live load — pinned by TestLeastLoadedAliveMultiDeath.
func (s *session) leastLoadedAlive(except int) int {
	load := make(map[int]int)
	for _, host := range s.hostOf {
		load[host]++
	}
	best, bestLoad := -1, 0
	for r := range s.roster {
		if !s.alive[r] || r == except {
			continue
		}
		if best < 0 || load[r] < bestLoad {
			best, bestLoad = r, load[r]
		}
	}
	return best
}

func (s *session) checkpoint() transport.Checkpoint {
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	return s.ckpt
}

// noteProgress folds a node-0 progress report into the session
// checkpoint (monotonically — a stale report never regresses it) and
// persists it to CheckpointDir when configured. Persistence failures are
// logged, never fatal: resume works from the in-memory checkpoint.
func (s *session) noteProgress(payload []byte) {
	c, err := transport.DecodeCheckpoint(payload)
	if err != nil {
		s.cfg.Logf("distmine: ignoring bad progress report: %v", err)
		return
	}
	if int(c.Nodes) != len(s.hostOf) {
		s.cfg.Logf("distmine: ignoring progress report for %d nodes (session has %d)", c.Nodes, len(s.hostOf))
		return
	}
	s.ckptMu.Lock()
	if c.Stage <= s.ckpt.Stage {
		s.ckptMu.Unlock()
		return
	}
	c.ClusterID = s.baseID
	s.ckpt = c
	s.ckptMu.Unlock()
	s.cfg.Logf("distmine: session %016x checkpointed at %s", s.baseID, transport.StageName(c.Stage))
	s.cfg.Obs.SetGauge("checkpoint_stage", int64(c.Stage))
	if s.cfg.OnCheckpointStage != nil {
		s.cfg.OnCheckpointStage(c.Stage)
	}
	if s.cfg.CheckpointDir != "" {
		path := checkpointPath(s.cfg.CheckpointDir, s.baseID)
		s.ckptWrites.Add(1)
		go func() {
			defer s.ckptWrites.Done()
			s.ckptFileMu.Lock()
			defer s.ckptFileMu.Unlock()
			if c.Stage <= s.ckptFileStage {
				return // a newer checkpoint already reached disk
			}
			sp := s.cfg.Obs.StartSpan("checkpoint:write", -1)
			err := transport.WriteCheckpointFile(path, c)
			sp.EndErr(err)
			if err != nil {
				s.cfg.Logf("distmine: persisting checkpoint: %v", err)
				return
			}
			s.ckptFileStage = c.Stage
		}()
	}
}

// runAttempt drives one full try of the session: dial and initialize
// every logical node on its current host, watch heartbeats, collect
// terminal reports. On failure it also returns the roster entries it
// attributes deaths to (empty when the failure was not a worker death —
// those are not recoverable by reassignment).
func (s *session) runAttempt() (*Result, []int, error) {
	cfg := s.cfg
	n := len(s.hostOf)
	// Each attempt gets a fresh cluster ID so a respawn-and-resume never
	// collides with a half-dead prior attempt's sessions still draining
	// on surviving daemons.
	attemptID, err := randomID()
	if err != nil {
		return nil, nil, fmt.Errorf("distmine: attempt id: %w", err)
	}
	peerAddrs := make([]string, n)
	for i, host := range s.hostOf {
		peerAddrs[i] = s.roster[host]
	}
	var resume []byte
	if ck := s.checkpoint(); ck.Stage > transport.StageNone {
		resume = transport.AppendCheckpoint(nil, ck)
	}

	ctx, cancel := context.WithDeadline(context.Background(), s.deadline)
	defer cancel()
	conns := make([]net.Conn, n)
	defer func() {
		for _, c := range conns {
			if c != nil {
				c.Close()
			}
		}
	}()

	// Dial every logical node's control plane (with retry — daemons may
	// still be starting up) and initialize it with its partition. A
	// setup failure is attributed as a death of the node's host so the
	// reassign policy can route around daemons that died between
	// attempts.
	for i := 0; i < n; i++ {
		addr := peerAddrs[i]
		var conn net.Conn
		err := transport.Retry(ctx, cfg.Retry, nil, func() error {
			c, err := net.DialTimeout("tcp", addr, cfg.IOTimeout)
			if err != nil {
				return err
			}
			hello := transport.AppendHello(nil, transport.Hello{
				ClusterID: attemptID, From: -1, To: int32(i), Purpose: transport.PurposeControl,
			})
			if err := writeFrameDeadline(c, transport.MsgHello, hello, cfg.IOTimeout); err != nil {
				c.Close()
				return err
			}
			conn = c
			return nil
		})
		if err != nil {
			return nil, []int{s.hostOf[i]}, fmt.Errorf("distmine: node %d (%s): control dial: %w", i, addr, err)
		}
		conns[i] = conn

		init := transport.Init{
			ClusterID:       attemptID,
			NodeID:          int32(i),
			Nodes:           int32(n),
			TotalDocs:       int32(s.p.TotalDocs),
			NumItems:        int32(s.p.NumItems),
			GlobalMin:       int32(s.p.GlobalMin),
			THTEntries:      int32(s.p.THTEntries),
			PartitionSize:   int32(s.p.PartitionSize),
			MaxK:            int32(s.p.MaxK),
			Workers:         int32(s.p.Workers),
			DenseThreshold:  s.p.DenseThreshold,
			Partitioner:     int32(s.p.Partitioner),
			HeartbeatMillis: int32(cfg.HeartbeatInterval / time.Millisecond),
			PeerAddrs:       peerAddrs,
			DB:              s.partBytes[i],
			Resume:          resume,
		}
		if err := writeFrameDeadline(conn, transport.MsgInit, transport.AppendInit(nil, init), cfg.MineTimeout); err != nil {
			return nil, []int{s.hostOf[i]}, fmt.Errorf("distmine: node %d (%s): sending init: %w", i, addr, err)
		}
	}

	// Watch every control connection: heartbeats and progress reports
	// stream in until the terminal NodeDone or ErrorMsg. A quiet
	// connection past HeartbeatTimeout — or a broken one — is a death.
	live := NewLiveness(n)
	dones := make([]transport.NodeDone, n)
	gotDone := make([]bool, n)
	nodeErrs := make([]error, n)
	var cancelled atomic.Bool
	var abortOnce sync.Once
	cancelAttempt := func() {
		abortOnce.Do(func() {
			cancelled.Store(true)
			for i, c := range conns {
				writeFrameDeadline(c, transport.MsgShutdown, nil, cfg.IOTimeout)
				// Node 0's control conn stays open: a progress frame may
				// already be buffered on it, and closing now would discard the
				// checkpoint the recovery is about to resume from. Its daemon
				// closes the conn after the shutdown, which ends the reader
				// deterministically after every buffered frame was processed.
				if i != 0 {
					c.Close()
				}
			}
		})
	}
	if cfg.Elastic != nil {
		// A Resize lands as an attempt abort; the session applies the new
		// roster at the recovery barrier. Disarm before returning so a
		// late Resize cannot touch a finished attempt's connections.
		cfg.Elastic.arm(cancelAttempt)
		defer cfg.Elastic.arm(nil)
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conn, addr := conns[i], peerAddrs[i]
			for {
				readDeadline := time.Now().Add(cfg.HeartbeatTimeout)
				if readDeadline.After(s.deadline) {
					readDeadline = s.deadline
				}
				conn.SetReadDeadline(readDeadline)
				t, payload, err := transport.ReadFrame(conn, nil)
				if err != nil {
					if cancelled.Load() {
						// The attempt was already aborted; this conn error is
						// cancellation fallout, not an independent death. (A
						// daemon that also died in the same window is discovered
						// by the next attempt's control dial instead.)
						return
					}
					var cause error
					if errors.Is(err, os.ErrDeadlineExceeded) {
						cause = fmt.Errorf("node %d (%s): no heartbeat within %v: %v", i, addr, cfg.HeartbeatTimeout, err)
					} else {
						cause = fmt.Errorf("node %d (%s): control connection lost: %v", i, addr, err)
					}
					live.MarkDead(i, cause)
					cancelAttempt()
					return
				}
				live.Beat(i)
				s.cfg.Obs.Beat(i)
				switch t {
				case transport.MsgHeartbeat:
					// The payload carries the node's pass progress; a beacon
					// that fails to decode still counted as a sign of life
					// above, so it is ignored rather than fatal.
					if hb, herr := transport.DecodeHeartbeat(payload); herr == nil {
						live.SetPass(i, int(hb.Passes))
						s.cfg.Obs.SetNodeGauge("mining_passes", i, int64(hb.Passes))
					}
				case transport.MsgProgress:
					if i == 0 {
						s.noteProgress(payload)
					}
				case transport.MsgNodeDone:
					done, derr := transport.DecodeNodeDone(payload)
					if derr != nil {
						nodeErrs[i] = fmt.Errorf("node %d (%s): bad report: %w", i, addr, derr)
						cancelAttempt()
						return
					}
					dones[i], gotDone[i] = done, true
					return
				case transport.MsgError:
					em, _ := transport.DecodeError(payload)
					nodeErrs[i] = fmt.Errorf("node %d (%s) failed: %s", i, addr, em.Text)
					cancelAttempt()
					return
				default:
					nodeErrs[i] = fmt.Errorf("node %d (%s): unexpected message type %d", i, addr, t)
					cancelAttempt()
					return
				}
			}
		}(i)
	}

	// Straggler watchdog: compares the fleet's heartbeat pass positions
	// and aborts the attempt when an armed lag threshold is crossed and
	// another alive daemon could take the lagging host's partitions. The
	// rebalance itself happens between attempts, on the same
	// checkpoint/resume machinery a death uses.
	//
	// Two guards keep the detector honest on fast sessions. A node still
	// at pass 0 is setting up (receiving its partition, building its
	// working copies), not mining — that window is bounded by the
	// heartbeat timeout, so pass 0 never counts as lagging. And the lag
	// must hold for stragglerSustainTicks consecutive ticks: a healthy
	// node whose beacon lands mid-burst looks far behind for one tick
	// and caught up on the next, while a genuinely slow partition stays
	// behind every tick.
	var stragMu sync.Mutex
	var strag *stragglerError
	watchStop := make(chan struct{})
	if cfg.StragglerLagPasses > 0 && n > 1 {
		go func() {
			tick := time.NewTicker(cfg.HeartbeatInterval)
			defer tick.Stop()
			lagTicks := make([]int, n)
			for {
				select {
				case <-watchStop:
					return
				case <-tick.C:
				}
				passes := live.Passes()
				lead := 0
				for _, p := range passes {
					if p > lead {
						lead = p
					}
				}
				for i, p := range passes {
					lag := lead - p
					if p == 0 || lag < cfg.StragglerLagPasses {
						lagTicks[i] = 0
						continue
					}
					lagTicks[i]++
					if lagTicks[i] < stragglerSustainTicks {
						continue
					}
					host := s.hostOf[i]
					// Each host triggers at most once per session, and firing
					// only makes sense with somewhere to move work: another
					// alive daemon, or an idle pool worker to grow onto.
					if s.rebalancedHost[peerAddrs[i]] {
						continue
					}
					if s.leastLoadedAlive(host) < 0 && cfg.AcquireWorkers == nil {
						continue
					}
					stragMu.Lock()
					strag = &stragglerError{node: i, host: host, addr: peerAddrs[i], lag: lag}
					stragMu.Unlock()
					cancelAttempt()
					return
				}
			}
		}()
	}
	wg.Wait()
	close(watchStop)

	if dead := live.DeadNodes(); len(dead) > 0 {
		hosts := make(map[int]bool)
		var deadHosts []int
		for _, node := range dead {
			if h := s.hostOf[node]; !hosts[h] {
				hosts[h] = true
				deadHosts = append(deadHosts, h)
			}
		}
		return nil, deadHosts, fmt.Errorf("distmine: %w", live.Dead(dead[0]))
	}
	stragMu.Lock()
	st := strag
	stragMu.Unlock()
	if st != nil {
		return nil, nil, fmt.Errorf("distmine: %w", st)
	}
	// A pending resize aborted the attempt: whatever fallout the abort
	// left in nodeErrs is cancellation noise, not failure. (If every
	// terminal report still arrived, the attempt beat the resize to the
	// finish and the result stands.)
	if pn := cfg.Elastic.pendingN(); pn > 0 {
		complete := true
		for _, ok := range gotDone {
			if !ok {
				complete = false
				break
			}
		}
		if !complete {
			return nil, nil, fmt.Errorf("distmine: %w", &resizeError{n: pn})
		}
	}
	for _, err := range nodeErrs {
		if err != nil {
			return nil, nil, fmt.Errorf("distmine: %w", err)
		}
	}
	for i, ok := range gotDone {
		if !ok {
			return nil, nil, fmt.Errorf("distmine: node %d (%s): no terminal report", i, peerAddrs[i])
		}
	}
	// Graceful shutdown: release the daemons' sessions.
	for _, c := range conns {
		writeFrameDeadline(c, transport.MsgShutdown, nil, cfg.IOTimeout)
	}

	// ---- Merge, exactly as the in-process miner does. ----
	if len(dones[0].GlobalCounts) != s.p.NumItems {
		return nil, nil, fmt.Errorf("distmine: node 0 reported %d global item counts, want %d",
			len(dones[0].GlobalCounts), s.p.NumItems)
	}
	globalCounts := make([]int, s.p.NumItems)
	for it, c := range dones[0].GlobalCounts {
		globalCounts[it] = int(c)
	}
	_, _, f1Counted := core.FrequentItems(globalCounts, s.p.GlobalMin)
	var all []itemset.Counted
	for _, done := range dones {
		all = append(all, done.Found...)
	}
	res := &Result{
		Frequent: core.MergeFound(f1Counted, all),
		Metrics:  mining.NewMetrics("distmine"),
		Nodes:    make([]NodeStats, n),
	}
	busy := make([]float64, n)
	for i, done := range dones {
		busy[i] = done.BusySeconds
		ns := NodeStats{Node: i, Docs: s.parts[i].Len(), Wire: done.Stats, PhaseSeconds: done.PhaseSeconds, BusySeconds: done.BusySeconds}
		res.Nodes[i] = ns
		res.Metrics.WireMessagesSent += ns.Wire.MessagesSent
		res.Metrics.WireMessagesReceived += ns.Wire.MessagesReceived
		res.Metrics.WireBytesSent += ns.Wire.BytesSent
		res.Metrics.WireBytesReceived += ns.Wire.BytesReceived
		res.Metrics.WireRetries += ns.Wire.Retries
		for _, sec := range ns.PhaseSeconds {
			res.Metrics.WireSeconds += sec
		}
	}
	res.Imbalance = imbalanceRatio(busy)
	if res.Imbalance > 0 {
		cfg.Obs.SetFloatGauge("pass_imbalance_ratio", res.Imbalance)
	}
	return res, nil, nil
}

package distmine

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"time"

	"pmihp/internal/core"
	"pmihp/internal/itemset"
	"pmihp/internal/mining"
	"pmihp/internal/transport"
	"pmihp/internal/txdb"
)

// ClusterConfig configures a coordinator-driven multi-process run.
type ClusterConfig struct {
	// Addrs lists the node daemons' listen addresses, one per node; the
	// cluster size is len(Addrs).
	Addrs []string
	// Retry bounds control-plane dials; zero selects the default policy.
	Retry transport.RetryPolicy
	// IOTimeout bounds individual control reads/writes (zero: 30s).
	// MineTimeout bounds the whole mining session (zero: 10min).
	IOTimeout   time.Duration
	MineTimeout time.Duration
}

// MineCluster mines db across the node daemons listed in cfg: it splits
// the database chronologically, ships each node its partition with the
// resolved session parameters, lets the nodes run the PMIHP protocol
// among themselves over their peer exchanges, and merges their reports.
// The frequent list is byte-identical to core.MinePMIHP's in exact mode
// on the same inputs.
func MineCluster(db *txdb.DB, cfg ClusterConfig, opts mining.Options) (*Result, error) {
	n := len(cfg.Addrs)
	if n == 0 {
		return nil, fmt.Errorf("distmine: no node addresses")
	}
	if cfg.IOTimeout <= 0 {
		cfg.IOTimeout = 30 * time.Second
	}
	if cfg.MineTimeout <= 0 {
		cfg.MineTimeout = 10 * time.Minute
	}
	cfg.Retry = cfg.Retry.WithDefaults()
	p, opts := params(db, opts)
	parts := db.SplitChronological(n)

	var idBytes [8]byte
	if _, err := rand.Read(idBytes[:]); err != nil {
		return nil, fmt.Errorf("distmine: cluster id: %w", err)
	}
	clusterID := binary.LittleEndian.Uint64(idBytes[:])

	// Dial every daemon's control plane (with retry — daemons may still
	// be starting up) and initialize it with its partition.
	ctx, cancel := context.WithTimeout(context.Background(), cfg.MineTimeout)
	defer cancel()
	conns := make([]net.Conn, n)
	defer func() {
		for _, c := range conns {
			if c != nil {
				c.Close()
			}
		}
	}()
	for i := 0; i < n; i++ {
		var conn net.Conn
		err := transport.Retry(ctx, cfg.Retry, nil, func() error {
			c, err := net.DialTimeout("tcp", cfg.Addrs[i], cfg.IOTimeout)
			if err != nil {
				return err
			}
			c.SetWriteDeadline(time.Now().Add(cfg.IOTimeout))
			hello := transport.AppendHello(nil, transport.Hello{
				ClusterID: clusterID, From: -1, Purpose: transport.PurposeControl,
			})
			if err := transport.WriteFrame(c, transport.MsgHello, hello, nil); err != nil {
				c.Close()
				return err
			}
			conn = c
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("distmine: node %d (%s): control dial: %w", i, cfg.Addrs[i], err)
		}
		conns[i] = conn

		var dbBuf bytes.Buffer
		if err := parts[i].Encode(&dbBuf); err != nil {
			return nil, fmt.Errorf("distmine: node %d: encoding partition: %w", i, err)
		}
		init := transport.Init{
			ClusterID:     clusterID,
			NodeID:        int32(i),
			Nodes:         int32(n),
			TotalDocs:     int32(p.TotalDocs),
			NumItems:      int32(p.NumItems),
			GlobalMin:     int32(p.GlobalMin),
			THTEntries:    int32(p.THTEntries),
			PartitionSize: int32(p.PartitionSize),
			MaxK:          int32(p.MaxK),
			Workers:       int32(p.Workers),
			PeerAddrs:     cfg.Addrs,
			DB:            dbBuf.Bytes(),
		}
		conn.SetWriteDeadline(time.Now().Add(cfg.MineTimeout))
		if err := transport.WriteFrame(conn, transport.MsgInit, transport.AppendInit(nil, init), nil); err != nil {
			return nil, fmt.Errorf("distmine: node %d (%s): sending init: %w", i, cfg.Addrs[i], err)
		}
	}

	// Collect every node's terminal report. On the first failure, abort
	// the whole session so surviving nodes blocked in collectives are
	// released instead of waiting out their timeouts.
	dones := make([]transport.NodeDone, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	shutdownAll := func() {
		for _, c := range conns {
			c.SetWriteDeadline(time.Now().Add(cfg.IOTimeout))
			transport.WriteFrame(c, transport.MsgShutdown, nil, nil)
		}
	}
	var abortOnce sync.Once
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conn := conns[i]
			conn.SetReadDeadline(time.Now().Add(cfg.MineTimeout))
			t, payload, err := transport.ReadFrame(conn, nil)
			if err != nil {
				errs[i] = fmt.Errorf("node %d (%s): waiting for report: %w", i, cfg.Addrs[i], err)
			} else {
				switch t {
				case transport.MsgNodeDone:
					done, derr := transport.DecodeNodeDone(payload)
					if derr != nil {
						errs[i] = fmt.Errorf("node %d (%s): bad report: %w", i, cfg.Addrs[i], derr)
					} else {
						dones[i] = done
					}
				case transport.MsgError:
					em, _ := transport.DecodeError(payload)
					errs[i] = fmt.Errorf("node %d (%s) failed: %s", i, cfg.Addrs[i], em.Text)
				default:
					errs[i] = fmt.Errorf("node %d (%s): unexpected message type %d", i, cfg.Addrs[i], t)
				}
			}
			if errs[i] != nil {
				abortOnce.Do(shutdownAll)
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("distmine: %w", err)
		}
	}
	shutdownAll()

	// ---- Merge, exactly as the in-process miner does. ----
	if len(dones[0].GlobalCounts) != p.NumItems {
		return nil, fmt.Errorf("distmine: node 0 reported %d global item counts, want %d",
			len(dones[0].GlobalCounts), p.NumItems)
	}
	globalCounts := make([]int, p.NumItems)
	for it, c := range dones[0].GlobalCounts {
		globalCounts[it] = int(c)
	}
	_, _, f1Counted := core.FrequentItems(globalCounts, p.GlobalMin)
	var all []itemset.Counted
	for _, done := range dones {
		all = append(all, done.Found...)
	}
	res := &Result{
		Frequent: core.MergeFound(f1Counted, all),
		Metrics:  mining.NewMetrics("distmine"),
		Nodes:    make([]NodeStats, n),
	}
	for i, done := range dones {
		ns := NodeStats{Node: i, Docs: parts[i].Len(), Wire: done.Stats, PhaseSeconds: done.PhaseSeconds}
		res.Nodes[i] = ns
		res.Metrics.WireMessagesSent += ns.Wire.MessagesSent
		res.Metrics.WireMessagesReceived += ns.Wire.MessagesReceived
		res.Metrics.WireBytesSent += ns.Wire.BytesSent
		res.Metrics.WireBytesReceived += ns.Wire.BytesReceived
		res.Metrics.WireRetries += ns.Wire.Retries
		for _, s := range ns.PhaseSeconds {
			res.Metrics.WireSeconds += s
		}
	}
	return res, nil
}

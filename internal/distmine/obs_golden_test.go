package distmine

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"pmihp/internal/core"
	"pmihp/internal/corpus"
	"pmihp/internal/mining"
	"pmihp/internal/obs"
)

// normalizePassEvents extracts the pass events from a trace, zeroes the
// run-dependent timing/traffic fields, and sorts by (k, node,
// partition). What remains — candidate counts, pruning deltas, trimmed
// items — is a deterministic function of the database and the mining
// options, so two runs of the same configuration must agree exactly.
func normalizePassEvents(evs []obs.Event) []obs.PassEvent {
	var out []obs.PassEvent
	for _, ev := range evs {
		if ev.Type != obs.TypePass {
			continue
		}
		p := *ev.Pass
		p.ScanSeconds = 0
		p.ExchangeSeconds = 0
		p.WireBytes = 0
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.K != b.K {
			return a.K < b.K
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		return a.Partition < b.Partition
	})
	return out
}

func marshalPassEvents(evs []obs.PassEvent) []byte {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, ev := range evs {
		enc.Encode(ev)
	}
	return buf.Bytes()
}

// TestPassEventGolden pins the per-pass event stream of the paper's
// E3 Figure 6 PMIHP/8 configuration (corpus B, 8 nodes, minsup 2,
// maxk 3) three ways: the in-process simulator and an 8-daemon loopback
// cluster must emit identical streams modulo node attribution timing,
// and both must match the checked-in golden file. Regenerate with
// PMIHP_UPDATE_GOLDEN=1 after an intentional mining change.
func TestPassEventGolden(t *testing.T) {
	db := buildDB(t, corpus.CorpusB(corpus.Small))
	opts := mining.Options{MinSupCount: 2, MaxK: 3}
	const nodes = 8

	inproc := obs.New(obs.Config{Keep: true})
	simOpts := opts
	simOpts.Obs = inproc
	if _, err := core.MinePMIHP(db, core.PMIHPConfig{Nodes: nodes}, simOpts); err != nil {
		t.Fatal(err)
	}

	cluster := obs.New(obs.Config{Keep: true})
	addrs := startDaemons(t, nodes, DaemonOptions{Obs: cluster})
	if _, err := MineCluster(db, ClusterConfig{Addrs: addrs, Retry: fastRetry}, opts); err != nil {
		t.Fatal(err)
	}

	simEvents := normalizePassEvents(inproc.Events())
	clusterEvents := normalizePassEvents(cluster.Events())
	if len(simEvents) == 0 {
		t.Fatal("in-process run emitted no pass events")
	}

	simBytes := marshalPassEvents(simEvents)
	clusterBytes := marshalPassEvents(clusterEvents)
	if !bytes.Equal(simBytes, clusterBytes) {
		t.Errorf("in-process and loopback cluster pass-event streams differ:\n--- in-process ---\n%s--- cluster ---\n%s",
			simBytes, clusterBytes)
	}

	golden := filepath.Join("testdata", "e3fig6_pmihp8_pass_events.golden")
	if os.Getenv("PMIHP_UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, simBytes, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d events)", golden, len(simEvents))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file (regen with PMIHP_UPDATE_GOLDEN=1): %v", err)
	}
	if !bytes.Equal(simBytes, want) {
		t.Errorf("pass-event stream diverged from %s (regen with PMIHP_UPDATE_GOLDEN=1 if intentional):\n--- got ---\n%s--- want ---\n%s",
			golden, simBytes, want)
	}
}

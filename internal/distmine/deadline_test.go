package distmine

import (
	"errors"
	"net"
	"testing"
	"time"

	"pmihp/internal/corpus"
	"pmihp/internal/mining"
	"pmihp/internal/obs"
	"pmihp/internal/transport"
)

// TestWriteFrameDeadlineCleared is the regression test for the stale
// write-deadline bug: control connections are persistent, and a
// deadline armed for one guarded write used to linger on the conn and
// fail a much later write with an i/o timeout attributed to the wrong
// frame. The reader below drains the first frame promptly, then stalls
// well past the guarded write's timeout before draining the second —
// exactly the slow-cluster pattern that tripped the old code.
func TestWriteFrameDeadlineCleared(t *testing.T) {
	cli, srv := net.Pipe()
	defer cli.Close()
	defer srv.Close()

	const timeout = 50 * time.Millisecond
	done := make(chan error, 1)
	go func() {
		if _, _, err := transport.ReadFrame(srv, nil); err != nil {
			done <- err
			return
		}
		time.Sleep(4 * timeout)
		_, _, err := transport.ReadFrame(srv, nil)
		done <- err
	}()

	if err := writeFrameDeadline(cli, transport.MsgHeartbeat, nil, timeout); err != nil {
		t.Fatalf("guarded write: %v", err)
	}
	// net.Pipe is synchronous, so this write blocks until the reader
	// wakes — past the guarded write's deadline. If writeFrameDeadline
	// had left that deadline armed, this write would fail with a
	// timeout; with the deadline cleared it must succeed.
	if err := transport.WriteFrame(cli, transport.MsgHeartbeat, nil, nil); err != nil {
		t.Fatalf("write after guarded write hit a stale deadline: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("reader: %v", err)
	}
}

// TestFinishRecovery pins the deadline-first accounting: a recovery the
// session survives accumulates into recoverySeconds; one that overran
// the session deadline is attributed entirely to the returned error and
// must not leak into the metric as well.
func TestFinishRecovery(t *testing.T) {
	rec := obs.New(obs.Config{Keep: true})
	s := &session{
		cfg:      ClusterConfig{Obs: rec},
		deadline: time.Now().Add(time.Hour),
	}
	cause := errors.New("node 1 died")

	if err := s.finishRecovery(time.Now().Add(-100*time.Millisecond), cause); err != nil {
		t.Fatalf("recovery within deadline: %v", err)
	}
	if s.recoverySeconds < 0.1 {
		t.Fatalf("recoverySeconds = %v, want >= 0.1", s.recoverySeconds)
	}
	survived := s.recoverySeconds

	s.deadline = time.Now().Add(-time.Second)
	err := s.finishRecovery(time.Now().Add(-50*time.Millisecond), cause)
	if err == nil {
		t.Fatal("recovery past deadline: want error")
	}
	if !errors.Is(err, cause) {
		t.Fatalf("deadline error does not wrap the cause: %v", err)
	}
	if s.recoverySeconds != survived {
		t.Fatalf("timed-out recovery double-counted: recoverySeconds %v -> %v",
			survived, s.recoverySeconds)
	}

	var spans []obs.SpanEvent
	for _, ev := range rec.Events() {
		if ev.Type == obs.TypeSpan && ev.Span.Name == "recovery:attempt" {
			spans = append(spans, *ev.Span)
		}
	}
	if len(spans) != 2 {
		t.Fatalf("got %d recovery:attempt spans, want 2", len(spans))
	}
	if spans[0].Err != "" {
		t.Fatalf("survived recovery span carries an error: %q", spans[0].Err)
	}
	if spans[1].Err == "" {
		t.Fatal("timed-out recovery span does not carry the cause")
	}
}

// TestRecoverySecondsDisjointFromWireSeconds pins the invariant that
// WireSeconds and RecoverySeconds never overlap: WireSeconds sums the
// successful attempt's exchange phases, recovery windows sit strictly
// between attempts.
func TestRecoverySecondsDisjointFromWireSeconds(t *testing.T) {
	db := buildDB(t, corpus.CorpusB(corpus.Small))
	opts := mining.Options{MinSupCount: 2, MaxK: 3}

	phaseSum := func(r *Result) float64 {
		var sum float64
		for _, ns := range r.Nodes {
			for _, s := range ns.PhaseSeconds {
				sum += s
			}
		}
		return sum
	}

	t.Run("healthy", func(t *testing.T) {
		addrs := startDaemons(t, 2, DaemonOptions{})
		got, err := MineCluster(db, ClusterConfig{Addrs: addrs, Retry: fastRetry}, opts)
		if err != nil {
			t.Fatal(err)
		}
		if got.Metrics.RecoverySeconds != 0 {
			t.Fatalf("zero-failover run reports RecoverySeconds = %v", got.Metrics.RecoverySeconds)
		}
		if got.Metrics.WireSeconds != phaseSum(got) {
			t.Fatalf("WireSeconds %v != sum of phase seconds %v", got.Metrics.WireSeconds, phaseSum(got))
		}
	})

	t.Run("failover", func(t *testing.T) {
		addrs := startDaemons(t, 3, DaemonOptions{})
		addrs[2] = deadAddr(t)
		got, err := MineCluster(db, ClusterConfig{
			Addrs:         addrs,
			Retry:         transport.RetryPolicy{Attempts: 2, BaseDelay: 1 * time.Millisecond, MaxDelay: 5 * time.Millisecond},
			FailurePolicy: FailurePolicyReassign,
			Logf:          t.Logf,
		}, opts)
		if err != nil {
			t.Fatal(err)
		}
		if got.Metrics.Failovers == 0 {
			t.Fatal("expected at least one failover with a dead daemon")
		}
		if got.Metrics.RecoverySeconds <= 0 {
			t.Fatalf("failover run reports RecoverySeconds = %v", got.Metrics.RecoverySeconds)
		}
		// Still only the successful attempt's phases — recovery time
		// must not bleed into the wire accounting.
		if got.Metrics.WireSeconds != phaseSum(got) {
			t.Fatalf("WireSeconds %v != sum of phase seconds %v", got.Metrics.WireSeconds, phaseSum(got))
		}
	})
}

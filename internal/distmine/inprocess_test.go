package distmine

import (
	"fmt"
	"testing"

	"pmihp/internal/core"
	"pmihp/internal/corpus"
	"pmihp/internal/mining"
	"pmihp/internal/text"
	"pmihp/internal/txdb"
)

func buildDB(t testing.TB, cfg corpus.Config) *txdb.DB {
	t.Helper()
	docs, err := corpus.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	db, _ := text.ToDB(docs, nil)
	return db
}

// requireIdentical asserts the distmine frequent list is byte-identical
// to the in-process PMIHP reference: same itemsets, same counts, same
// order.
func requireIdentical(t *testing.T, ref []mining.Result, got *Result) {
	t.Helper()
	want := ref[0].Frequent
	if len(got.Frequent) != len(want) {
		t.Fatalf("frequent list length %d, want %d", len(got.Frequent), len(want))
	}
	for i := range want {
		if !want[i].Set.Equal(got.Frequent[i].Set) || want[i].Count != got.Frequent[i].Count {
			t.Fatalf("entry %d: got %v/%d, want %v/%d",
				i, got.Frequent[i].Set, got.Frequent[i].Count, want[i].Set, want[i].Count)
		}
	}
}

func pmihpRef(t *testing.T, db *txdb.DB, nodes int, opts mining.Options) []mining.Result {
	t.Helper()
	r, err := core.MinePMIHP(db, core.PMIHPConfig{Nodes: nodes}, opts)
	if err != nil {
		t.Fatal(err)
	}
	return []mining.Result{*r.Result}
}

func TestInProcessMatchesPMIHP(t *testing.T) {
	for _, tc := range []struct {
		nodes int
		opts  mining.Options
	}{
		{1, mining.Options{MinSupCount: 2, MaxK: 3}},
		{2, mining.Options{MinSupCount: 2, MaxK: 3}},
		{4, mining.Options{MinSupFrac: 0.05, MaxK: 4}},
		{7, mining.Options{MinSupCount: 2, MaxK: 3}}, // non-power-of-two
		{8, mining.Options{MinSupCount: 3}},
	} {
		t.Run(fmt.Sprintf("n=%d", tc.nodes), func(t *testing.T) {
			db := buildDB(t, corpus.CorpusB(corpus.Small))
			ref := pmihpRef(t, db, tc.nodes, tc.opts)
			got, err := MineInProcess(db, tc.nodes, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			requireIdentical(t, ref, got)
		})
	}
}

func TestInProcessWireStatsAccounted(t *testing.T) {
	db := buildDB(t, corpus.CorpusB(corpus.Small))
	res, err := MineInProcess(db, 4, mining.Options{MinSupCount: 2, MaxK: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.WireMessagesSent == 0 || res.Metrics.WireBytesSent == 0 {
		t.Fatalf("wire traffic not accounted: %+v", res.Metrics)
	}
	if res.Metrics.WireRetries != 0 {
		t.Fatalf("in-process exchange reported retries: %d", res.Metrics.WireRetries)
	}
	if len(res.Nodes) != 4 {
		t.Fatalf("node stats: %d", len(res.Nodes))
	}
}

package distmine

import (
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// fakeNode writes a shell script that acts like a pmihp-node binary:
// body runs after the shebang, with the script's own PID available.
func fakeNode(t *testing.T, name, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	script := "#!/bin/sh\n" + body + "\n"
	if err := os.WriteFile(path, []byte(script), 0o755); err != nil {
		t.Fatal(err)
	}
	return path
}

// pidFromFile reads a PID the fake node recorded.
func pidFromFile(t *testing.T, path string) int {
	t.Helper()
	var pid int
	deadline := time.Now().Add(5 * time.Second)
	for {
		b, err := os.ReadFile(path)
		if err == nil && len(b) > 0 {
			if _, err := fmtSscan(strings.TrimSpace(string(b)), &pid); err == nil {
				return pid
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("no pid in %s", path)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func fmtSscan(s string, pid *int) (int, error) {
	n := 0
	for _, c := range s {
		if c < '0' || c > '9' {
			break
		}
		n = n*10 + int(c-'0')
	}
	if n == 0 {
		return 0, os.ErrInvalid
	}
	*pid = n
	return 1, nil
}

// processGone reports whether the PID no longer exists (or is a zombie
// already reaped by our Wait).
func processGone(pid int) bool {
	err := syscall.Kill(pid, 0)
	return err == syscall.ESRCH
}

func waitGone(t *testing.T, pid int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !processGone(pid) {
		if time.Now().After(deadline) {
			t.Fatalf("process %d still alive", pid)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSpawnerStopKillsChildren: the happy path leaves no processes
// behind after Stop.
func TestSpawnerStopKillsChildren(t *testing.T) {
	dir := t.TempDir()
	bin := fakeNode(t, "node", `echo $$ >> `+dir+`/pids
echo "pmihp-node listening on 127.0.0.1:1"
sleep 60`)
	s := NewSpawner(bin, nil)
	addrs, err := s.SpawnN(3)
	if err != nil {
		t.Fatalf("SpawnN: %v", err)
	}
	if len(addrs) != 3 {
		t.Fatalf("got %d addrs, want 3", len(addrs))
	}
	s.Stop()
	b, err := os.ReadFile(dir + "/pids")
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Fields(string(b)) {
		var pid int
		if _, err := fmtSscan(line, &pid); err != nil {
			t.Fatalf("bad pid line %q", line)
		}
		waitGone(t, pid)
	}
	// Stop is idempotent and Spawn refuses after it.
	s.Stop()
	if _, err := s.Spawn(); err == nil {
		t.Fatal("Spawn after Stop should fail")
	}
}

// TestSpawnerKillsSilentChild: a worker that never announces is killed
// before the error returns — the regression the -cluster leak fix pins.
func TestSpawnerKillsSilentChild(t *testing.T) {
	pidFile := filepath.Join(t.TempDir(), "pid")
	bin := fakeNode(t, "node", `echo $$ > `+pidFile+`
sleep 60`)
	s := NewSpawner(bin, nil)
	s.AnnounceTimeout = 200 * time.Millisecond
	if _, err := s.Spawn(); err == nil {
		t.Fatal("Spawn of a silent worker should fail")
	} else if !strings.Contains(err.Error(), "did not announce") {
		t.Fatalf("error %q should mention the missing announcement", err)
	}
	waitGone(t, pidFromFile(t, pidFile))
}

// TestSpawnNKillsEarlierChildrenOnFailure: when a later worker fails to
// start, the earlier (healthy, announced) ones are killed too.
func TestSpawnNKillsEarlierChildrenOnFailure(t *testing.T) {
	dir := t.TempDir()
	// The first invocation announces and sleeps; later ones stay silent.
	// A mkdir lock makes the distinction atomic.
	bin := fakeNode(t, "node", `if mkdir `+dir+`/lock 2>/dev/null; then
  echo $$ > `+dir+`/first.pid
  echo "pmihp-node listening on 127.0.0.1:1"
fi
sleep 60`)
	s := NewSpawner(bin, nil)
	s.AnnounceTimeout = 200 * time.Millisecond
	if _, err := s.SpawnN(2); err == nil {
		t.Fatal("SpawnN with a silent second worker should fail")
	}
	waitGone(t, pidFromFile(t, filepath.Join(dir, "first.pid")))
}

// TestSpawnNodesCompat: the function wrapper still stops its children.
func TestSpawnNodesCompat(t *testing.T) {
	pidFile := filepath.Join(t.TempDir(), "pid")
	bin := fakeNode(t, "node", `echo $$ > `+pidFile+`
echo "pmihp-node listening on 127.0.0.1:1"
sleep 60`)
	addrs, stop, err := SpawnNodes(bin, 1, nil)
	if err != nil {
		t.Fatalf("SpawnNodes: %v", err)
	}
	if len(addrs) != 1 || addrs[0] != "127.0.0.1:1" {
		t.Fatalf("addrs = %v", addrs)
	}
	stop()
	waitGone(t, pidFromFile(t, pidFile))
}

package distmine

import (
	"bytes"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"pmihp/internal/corpus"
	"pmihp/internal/mining"
	"pmihp/internal/transport"
	"pmihp/internal/txdb"
)

// elasticCorpus is a database big enough that the window between the
// StageItemCounts barrier and session completion spans most of the run —
// the resize request raised at the barrier reliably lands mid-run.
func elasticCorpus(t *testing.T) *txdb.DB {
	cfg := corpus.CorpusSkewed(corpus.Small)
	cfg.Docs = 336
	return buildDB(t, cfg)
}

// resizeAtBarrier wires an ElasticControl plus an OnCheckpointStage hook
// that requests a resize onto addrs the first time the session
// checkpoints at (or past) StageItemCounts.
func resizeAtBarrier(t *testing.T, addrs []string) (*ElasticControl, func(stage uint8)) {
	t.Helper()
	ctrl := NewElasticControl()
	var once sync.Once
	return ctrl, func(stage uint8) {
		if stage < transport.StageItemCounts {
			return
		}
		once.Do(func() {
			if err := ctrl.Resize(addrs); err != nil {
				t.Errorf("resize: %v", err)
			}
		})
	}
}

// TestClusterElasticResize scales a running session's logical node
// count mid-run — up (2 -> 4) and down (4 -> 2) — at the first
// StageItemCounts barrier. The frequent list must stay byte-identical
// to core.MinePMIHP and the resize must be accounted.
func TestClusterElasticResize(t *testing.T) {
	cases := []struct {
		name       string
		start, end int
	}{
		{"grow-2-to-4", 2, 4},
		{"shrink-4-to-2", 4, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			daemons := startDaemons(t, max(tc.start, tc.end), DaemonOptions{})
			db := elasticCorpus(t)
			opts := mining.Options{MinSupCount: 2, MaxK: 3}
			ref := pmihpRef(t, db, tc.start, opts)

			ctrl, onStage := resizeAtBarrier(t, daemons[:tc.end])
			got, err := MineCluster(db, ClusterConfig{
				Addrs:             daemons[:tc.start],
				Retry:             fastRetry,
				Elastic:           ctrl,
				OnCheckpointStage: onStage,
				Logf:              t.Logf,
			}, opts)
			if err != nil {
				t.Fatal(err)
			}
			requireIdentical(t, ref, got)
			if got.Metrics.ElasticResizes != 1 {
				t.Fatalf("ElasticResizes = %d, want 1", got.Metrics.ElasticResizes)
			}
			if len(got.Nodes) != tc.end {
				t.Fatalf("finished with %d nodes, want %d after resize", len(got.Nodes), tc.end)
			}
			if got.Metrics.Failovers != 0 || got.Metrics.ReassignedPartitions != 0 {
				t.Fatalf("resize charged as failover: %+v", got.Metrics)
			}
		})
	}
}

// TestClusterResizeBeforeStart: a resize requested before MineCluster
// begins is applied at the first recovery barrier, before any attempt —
// the session simply runs on the new roster.
func TestClusterResizeBeforeStart(t *testing.T) {
	daemons := startDaemons(t, 3, DaemonOptions{})
	db := buildDB(t, corpus.CorpusB(corpus.Small))
	opts := mining.Options{MinSupCount: 2, MaxK: 3}
	ref := pmihpRef(t, db, 3, opts)

	ctrl := NewElasticControl()
	if err := ctrl.Resize(daemons); err != nil {
		t.Fatal(err)
	}
	got, err := MineCluster(db, ClusterConfig{
		Addrs:   daemons[:2],
		Retry:   fastRetry,
		Elastic: ctrl,
		Logf:    t.Logf,
	}, opts)
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, ref, got)
	if got.Metrics.ElasticResizes != 1 {
		t.Fatalf("ElasticResizes = %d, want 1", got.Metrics.ElasticResizes)
	}
	if len(got.Nodes) != 3 {
		t.Fatalf("finished with %d nodes, want 3", len(got.Nodes))
	}
}

// TestStragglerGrowsOntoIdleWorkers: the day-skewed corpus under
// equal-count partitioning makes the heavy node's passes crawl; with
// AcquireWorkers offering idle pool daemons, the armed detector must
// grow the roster and re-split (an elastic resize) instead of migrating
// the slow partition onto already-busy survivors — and the result must
// stay byte-identical.
func TestStragglerGrowsOntoIdleWorkers(t *testing.T) {
	daemons := startDaemons(t, 4, DaemonOptions{})
	idle := startDaemons(t, 2, DaemonOptions{})
	db := elasticCorpus(t)
	opts := mining.Options{MinSupCount: 2, MaxK: 3}
	ref := pmihpRef(t, db, 4, opts)

	var mu sync.Mutex
	var logs []string
	logf := func(format string, args ...any) {
		mu.Lock()
		logs = append(logs, format)
		mu.Unlock()
		t.Logf(format, args...)
	}
	acquired := 0
	got, err := MineCluster(db, ClusterConfig{
		Addrs:              daemons,
		Retry:              fastRetry,
		HeartbeatInterval:  5 * time.Millisecond,
		HeartbeatTimeout:   2 * time.Second,
		StragglerLagPasses: 3,
		AcquireWorkers: func(max int) []string {
			mu.Lock()
			defer mu.Unlock()
			if acquired > 0 {
				return nil // one grow per test; later fires fall back
			}
			n := min(max, len(idle))
			acquired = n
			return idle[:n]
		},
		Logf: logf,
	}, opts)
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, ref, got)
	if got.Metrics.ElasticResizes < 1 {
		t.Fatalf("ElasticResizes = %d, want >= 1 (straggler should grow, not migrate)", got.Metrics.ElasticResizes)
	}
	if got.Metrics.Failovers != 0 {
		t.Fatalf("straggler growth charged as failover: %+v", got.Metrics)
	}
	mu.Lock()
	defer mu.Unlock()
	if acquired == 0 {
		t.Fatal("AcquireWorkers never returned workers")
	}
	found := false
	for _, l := range logs {
		if strings.Contains(l, "growing onto") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no straggler-growth log line; logs: %v", logs)
	}
}

// rawControlConn speaks the coordinator's side of the control plane by
// hand: Hello + Init out, then frames in until a terminal message.
type rawControlConn struct {
	t    *testing.T
	conn net.Conn
}

func dialControl(t *testing.T, addr string, clusterID uint64, node int32) *rawControlConn {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	hello := transport.AppendHello(nil, transport.Hello{
		ClusterID: clusterID, From: -1, To: node, Purpose: transport.PurposeControl,
	})
	if err := transport.WriteFrame(conn, transport.MsgHello, hello, nil); err != nil {
		t.Fatal(err)
	}
	return &rawControlConn{t: t, conn: conn}
}

func (c *rawControlConn) sendInit(init transport.Init) {
	c.t.Helper()
	if err := transport.WriteFrame(c.conn, transport.MsgInit, transport.AppendInit(nil, init), nil); err != nil {
		c.t.Fatal(err)
	}
}

// awaitTerminal reads frames (skipping heartbeats and progress) until a
// NodeDone or ErrorMsg arrives.
func (c *rawControlConn) awaitTerminal(timeout time.Duration) (uint8, []byte) {
	c.t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		c.conn.SetReadDeadline(deadline)
		mt, payload, err := transport.ReadFrame(c.conn, nil)
		if err != nil {
			c.t.Fatalf("reading control frame: %v", err)
		}
		switch mt {
		case transport.MsgHeartbeat, transport.MsgProgress:
			continue
		default:
			return mt, payload
		}
	}
}

// TestDaemonReInitSupersedesDrainingSession is the reconnect regression
// test: a daemon hosting a wedged logical node (its peer is dead, so
// the first attempt blocks after its exchange fails, holding the
// session registration until a Shutdown that will never come) must let
// a re-Init of the same (cluster, node) supersede the draining session
// instead of wedging reassign-to-same-daemon recovery.
func TestDaemonReInitSupersedesDrainingSession(t *testing.T) {
	addr := startDaemons(t, 1, DaemonOptions{
		Retry:       transport.RetryPolicy{Attempts: 2, BaseDelay: 1 * time.Millisecond, MaxDelay: 5 * time.Millisecond},
		WaitTimeout: 10 * time.Second,
		Logf:        t.Logf,
	})[0]
	db := buildDB(t, corpus.CorpusB(corpus.Small))
	p, _ := params(db, mining.Options{MinSupCount: 2, MaxK: 3})
	part := encodeDB(t, db)
	const clusterID = 0xdecafbad

	baseInit := transport.Init{
		ClusterID:       clusterID,
		NodeID:          0,
		TotalDocs:       int32(p.TotalDocs),
		NumItems:        int32(p.NumItems),
		GlobalMin:       int32(p.GlobalMin),
		THTEntries:      int32(p.THTEntries),
		PartitionSize:   int32(p.PartitionSize),
		MaxK:            int32(p.MaxK),
		Workers:         1,
		DenseThreshold:  p.DenseThreshold,
		HeartbeatMillis: 20,
		DB:              part,
	}

	// First attempt: a 2-node session whose peer is dead. The node's
	// exchange retries, fails, and the session then blocks waiting for a
	// Shutdown — registered, draining, wedged.
	first := dialControl(t, addr, clusterID, 0)
	wedged := baseInit
	wedged.Nodes = 2
	wedged.PeerAddrs = []string{addr, deadAddr(t)}
	first.sendInit(wedged)
	if mt, payload := first.awaitTerminal(10 * time.Second); mt != transport.MsgError {
		t.Fatalf("wedged attempt: got message type %d, want MsgError", mt)
	} else if em, err := transport.DecodeError(payload); err != nil || em.Text == "" {
		t.Fatalf("wedged attempt: bad error frame: %v %q", err, em.Text)
	}
	// The first control conn stays open: the daemon keeps the failed
	// session registered until Shutdown.

	// Second attempt, same (cluster, node): a 1-node session that can
	// complete alone. It must supersede the draining registration and
	// finish with a NodeDone.
	second := dialControl(t, addr, clusterID, 0)
	solo := baseInit
	solo.Nodes = 1
	solo.PeerAddrs = []string{addr}
	second.sendInit(solo)
	mt, payload := second.awaitTerminal(10 * time.Second)
	if mt != transport.MsgNodeDone {
		if mt == transport.MsgError {
			em, _ := transport.DecodeError(payload)
			t.Fatalf("re-init failed instead of superseding: %s", em.Text)
		}
		t.Fatalf("re-init: got message type %d, want MsgNodeDone", mt)
	}
	done, err := transport.DecodeNodeDone(payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(done.Found) == 0 {
		t.Fatal("superseding session mined nothing")
	}
	transport.WriteFrame(second.conn, transport.MsgShutdown, nil, nil)
}

// TestLeastLoadedAliveMultiDeath pins the placement audit: the load map
// counts every hostOf entry — including partitions still attributed to
// dead hosts mid-recovery — but selection skips dead and excepted
// entries, so live placements only ever weigh live load.
func TestLeastLoadedAliveMultiDeath(t *testing.T) {
	cases := []struct {
		name   string
		alive  []bool
		hostOf []int
		except int
		want   int
	}{
		{
			// All alive, equal load: lowest index wins.
			name:  "uniform",
			alive: []bool{true, true, true}, hostOf: []int{0, 1, 2},
			except: -1, want: 0,
		},
		{
			// Host 0 dead with two orphans still attributed to it: its
			// phantom load must not steer placement, and it must never be
			// selected. Hosts 1 and 2 each hold one node; lowest index wins.
			name:  "dead-host-load-ignored",
			alive: []bool{false, true, true}, hostOf: []int{0, 0, 1, 2},
			except: -1, want: 1,
		},
		{
			// Two of four dead; host 3 carries an earlier reassignment so
			// host 1 (lighter) must win even though 3 has a lower... it
			// does not — 1 < 3 in load: 1 holds one node, 3 holds two.
			name:  "multi-death-prefers-lighter-survivor",
			alive: []bool{false, true, false, true}, hostOf: []int{0, 1, 2, 3, 3},
			except: -1, want: 1,
		},
		{
			// The straggler's own host is excepted even though it is alive
			// and lightest.
			name:  "except-straggler",
			alive: []bool{true, true, true}, hostOf: []int{0, 1, 1, 2, 2},
			except: 0, want: 1,
		},
		{
			// Everyone dead or excepted: no candidate.
			name:  "no-candidates",
			alive: []bool{false, true}, hostOf: []int{0, 1},
			except: 1, want: -1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			roster := make([]string, len(tc.alive))
			for i := range roster {
				roster[i] = "host"
			}
			s := &session{roster: roster, alive: tc.alive, hostOf: tc.hostOf}
			if got := s.leastLoadedAlive(tc.except); got != tc.want {
				t.Fatalf("leastLoadedAlive(%d) = %d, want %d", tc.except, got, tc.want)
			}
		})
	}
	// Sequential multi-death recovery: orphans are placed one at a time
	// and each placement must see the previous one's load.
	s := &session{
		roster: []string{"a", "b", "c", "d"},
		alive:  []bool{false, false, true, true},
		hostOf: []int{0, 1, 2, 3},
	}
	first := s.leastLoadedAlive(-1)
	if first != 2 {
		t.Fatalf("first orphan placed on %d, want 2", first)
	}
	s.hostOf[0] = first
	second := s.leastLoadedAlive(-1)
	if second != 3 {
		t.Fatalf("second orphan placed on %d, want 3 (host 2 now carries two)", second)
	}
}

// TestCheckpointRetiredOnSuccess: a cleanly completed session must not
// leave its session-<id>.ckpt behind in CheckpointDir.
func TestCheckpointRetiredOnSuccess(t *testing.T) {
	dir := t.TempDir()
	addrs := startDaemons(t, 2, DaemonOptions{})
	db := buildDB(t, corpus.CorpusB(corpus.Small))
	opts := mining.Options{MinSupCount: 2, MaxK: 3}
	ref := pmihpRef(t, db, 2, opts)
	got, err := MineCluster(db, ClusterConfig{
		Addrs:         addrs,
		Retry:         fastRetry,
		CheckpointDir: dir,
		Logf:          t.Logf,
	}, opts)
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, ref, got)
	left, err := filepath.Glob(filepath.Join(dir, "session-*.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 0 {
		t.Fatalf("checkpoint files left after clean completion: %v", left)
	}
}

// TestRetireStaleCheckpoint: a brand-new session whose 64-bit random id
// collides with an unretired predecessor's file must remove that file
// (with attribution) before anything can resume from it.
func TestRetireStaleCheckpoint(t *testing.T) {
	dir := t.TempDir()
	const id = uint64(0x1234abcd)
	path := checkpointPath(dir, id)
	stale := transport.Checkpoint{ClusterID: id, Nodes: 2, Stage: transport.StageItemCounts, GlobalCounts: []uint32{1, 2}}
	if err := transport.WriteCheckpointFile(path, stale); err != nil {
		t.Fatal(err)
	}
	var logs []string
	retireStaleCheckpoint(dir, id, func(format string, args ...any) {
		logs = append(logs, format)
	})
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("stale checkpoint not removed: %v", err)
	}
	found := false
	for _, l := range logs {
		if strings.Contains(l, "id collision") {
			found = true
		}
	}
	if !found {
		t.Fatalf("collision not attributed in logs: %v", logs)
	}
	// A different id must leave the directory alone.
	if err := transport.WriteCheckpointFile(path, stale); err != nil {
		t.Fatal(err)
	}
	retireStaleCheckpoint(dir, id+1, t.Logf)
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("unrelated checkpoint removed: %v", err)
	}
}

// encodeDB serializes a database the way the coordinator ships
// partitions.
func encodeDB(t *testing.T, db *txdb.DB) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := db.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// Package distmine is the multi-process cluster runtime: it drives the
// PMIHP node protocol of internal/core over a transport.Exchange, so the
// same algorithm that runs in-process with simulated clocks also runs
// across OS processes over real TCP connections.
//
// The protocol a node executes is exactly the phase sequence of
// core.MinePMIHP — pass-1 THT build, item-count exchange, THT exchange,
// local mining with candidate polling, final frequent-list exchange —
// with the in-process fabric replaced by the exchange. Global counting
// runs deferred: every locally frequent itemset is queued during mining
// and resolved by peer polls afterwards. In exact mode that ordering is
// invisible in the output — polls have no feedback into local mining,
// exact counts sum identically in any order, and the merge is a
// deterministic sort — which is why the distributed runtime produces
// frequent itemsets byte-identical to the in-process miner.
package distmine

import (
	"fmt"
	"time"

	"pmihp/internal/core"
	"pmihp/internal/itemset"
	"pmihp/internal/mining"
	"pmihp/internal/obs"
	"pmihp/internal/tht"
	"pmihp/internal/transport"
	"pmihp/internal/txdb"
)

// NodeParams carries the session parameters resolved at the coordinator
// (the body of the Init message, minus the partition itself).
type NodeParams struct {
	TotalDocs int // |D| across the cluster
	NumItems  int
	GlobalMin int // global minimum support count

	THTEntries    int // global THT slots; each node builds entries/N (min 4)
	PartitionSize int
	MaxK          int
	Workers       int // intra-node workers (0 = GOMAXPROCS)
	// DenseThreshold selects the poll counter's hybrid posting layout
	// (see mining.Options.DenseThreshold). Resolved at the coordinator so
	// every node prices its inverted file by the same density rule; a
	// node-local flag may still override it for heterogeneous hardware
	// (the layout never changes results or simulated charges).
	DenseThreshold float64
	// Partitioner records how the coordinator cut the session's
	// partitions. The partition a node receives is already cut, so the
	// field only labels logs and traces — it never re-splits anything
	// node-side.
	Partitioner mining.Partitioner
}

// nodeHooks wires a node run into the fault-tolerance machinery.
type nodeHooks struct {
	// resume, when non-nil, is the checkpoint of a failed session: the
	// run skips the collectives the checkpoint covers and rebuilds their
	// results from it instead (the same state, by core's resume seams, so
	// the mining that follows is byte-identical to an uninterrupted run).
	resume *transport.Checkpoint
	// progress, when non-nil (node 0 of a coordinator-driven session),
	// receives the checkpointable state after each collective completes.
	progress func(stage uint8, counts []uint32, thtSegments [][]byte)
	// obs, when non-nil, receives the node's pass events, collective
	// spans, and poll batches.
	obs *obs.Recorder
	// onPass, when non-nil, runs after every local counting pass — the
	// daemon's pass counter behind the heartbeat progress payload.
	onPass func()
}

// nodeOutcome is what one node's protocol run produces.
type nodeOutcome struct {
	// GlobalCounts is the all-reduced per-item count vector (identical at
	// every node; the coordinator reads node 0's).
	GlobalCounts []int
	// Found is this node's globally frequent itemsets (k >= 2), with
	// exact global counts.
	Found []itemset.Counted
	// Merged is the cluster-wide frequent list (F1 included) assembled
	// from the final all-gather — the full mining result, available at
	// every node as the paper's protocol provides.
	Merged []itemset.Counted
	// PhaseSeconds is measured wall clock: [0] item-count exchange,
	// [1] THT exchange, [2] candidate polling, [3] final exchange.
	PhaseSeconds [4]float64
	// Miner and Server are the node's mining and poll-service accounting.
	Miner, Server mining.Metrics
}

// runNode executes the PMIHP node protocol over the exchange. The
// caller owns the exchange (and its listener, for TCP) and closes it
// after the coordinator's shutdown. With h.resume set, the run skips
// the collectives the checkpoint covers and continues from their
// recorded results.
func runNode(x transport.Exchange, db *txdb.DB, p NodeParams, h nodeHooks) (*nodeOutcome, error) {
	n, self := x.Nodes(), x.NodeID()
	stage := transport.StageNone
	if h.resume != nil {
		if int(h.resume.Nodes) != n {
			return nil, fmt.Errorf("resume checkpoint for %d nodes, this session has %d", h.resume.Nodes, n)
		}
		stage = h.resume.Stage
	}
	out := &nodeOutcome{
		Miner:  mining.NewMetrics("distmine-miner"),
		Server: mining.NewMetrics("distmine-server"),
	}
	opts := mining.Options{
		MinSupCount:      p.GlobalMin, // resolved at the coordinator
		MaxK:             p.MaxK,
		PartitionSize:    p.PartitionSize,
		THTEntries:       p.THTEntries,
		IntraNodeWorkers: p.Workers,
		DenseThreshold:   p.DenseThreshold,
		Partitioner:      p.Partitioner,
		Obs:              h.obs,
	}.WithDefaults()
	workers := opts.Workers()

	// Observability spans reuse the exact PhaseSeconds measurements (one
	// clock read pair per collective, same as before), so trace replays
	// reconcile with Metrics.WireSeconds instead of drifting by an
	// independent clock. Wire bytes attribute by stats delta around the
	// collective.
	rec := h.obs
	wireMark := func() transport.WireStatsSnapshot {
		if rec.Enabled() {
			return x.Stats().Snapshot()
		}
		return transport.WireStatsSnapshot{}
	}
	span := func(name string, seconds float64, before transport.WireStatsSnapshot, err error) {
		if !rec.Enabled() {
			return
		}
		ev := obs.SpanEvent{
			Name:    name,
			Node:    self,
			Seconds: seconds,
			Bytes:   x.Stats().Snapshot().Delta(before).TotalBytes(),
		}
		if err != nil {
			ev.Err = err.Error()
		}
		rec.RecordSpan(ev)
	}

	// ---- Pass 1: local THT build and item counts. A resume beyond the
	// THT stage needs neither — every segment comes from the checkpoint.
	var local *tht.Local
	var counts []int
	if stage < transport.StageTHT {
		entries := p.THTEntries / n
		if entries < 4 {
			entries = 4
		}
		local, counts = tht.BuildLocalShards(db, entries, workers)
	}

	// ---- Exchange: global item counts. The paper's all-reduce is
	// realized as gather + local sum, which keeps the cascade lossless
	// and, because integer addition commutes, yields the same vector at
	// every node regardless of arrival order. A resume restores the
	// vector from the checkpoint instead — it is the exact sum the
	// original collective produced.
	var globalCounts []int
	if stage < transport.StageItemCounts {
		countBlob := make([]uint32, p.NumItems)
		for it, c := range counts {
			countBlob[it] = uint32(c)
		}
		before := wireMark()
		t0 := time.Now()
		blobs, err := x.AllGather(transport.PhaseItemCounts, transport.AppendUint32s(nil, countBlob))
		out.PhaseSeconds[0] = time.Since(t0).Seconds()
		span("exchange:item-counts", out.PhaseSeconds[0], before, err)
		if err != nil {
			return nil, fmt.Errorf("item-count exchange: %w", err)
		}
		globalCounts = make([]int, p.NumItems)
		for i, b := range blobs {
			v, err := transport.DecodeUint32s(b)
			if err != nil {
				return nil, fmt.Errorf("item counts from node %d: %w", i, err)
			}
			if len(v) != p.NumItems {
				return nil, fmt.Errorf("item counts from node %d: %d items, want %d", i, len(v), p.NumItems)
			}
			for it, c := range v {
				globalCounts[it] += int(c)
			}
		}
		if h.progress != nil {
			h.progress(transport.StageItemCounts, u32Counts(globalCounts), nil)
		}
	} else {
		var err error
		globalCounts, err = core.ResumeCounts(h.resume.GlobalCounts, p.NumItems)
		if err != nil {
			return nil, fmt.Errorf("resuming item counts: %w", err)
		}
	}
	out.GlobalCounts = globalCounts
	freq, f1, f1Counted := core.FrequentItems(globalCounts, p.GlobalMin)

	// ---- Poll service. Installed before the THT exchange: a peer can
	// only poll after completing that collective, which transitively
	// guarantees this handler exists before the first request arrives.
	// The exchange serializes handler calls. ----
	pc := core.NewPollCounter(db, workers, opts.DenseThreshold)
	server := &out.Server
	x.SetPollHandler(func(k int, sets []itemset.Itemset) []int32 {
		server.AddCandidates(k, len(sets))
		if rec.Enabled() {
			rec.Poll(obs.PollEvent{Node: self, K: k, Sets: len(sets)})
		}
		counts := pc.CountBatch(sets, server)
		replies := make([]int32, len(sets))
		for i, c := range counts {
			replies[i] = int32(c)
		}
		return replies
	})

	// ---- Exchange: local THTs (frequent rows only), cascade assembly.
	// A resume past this stage decodes every segment (its own included)
	// from the checkpointed wire blobs — the cascade bounds are identical
	// to the live segments' (pinned by core's resume fidelity test) — and
	// replaces the skipped collective with a cheap barrier, because
	// exiting a collective is what licenses peers to start polling.
	var global *tht.Global
	if stage < transport.StageTHT {
		local.Retain(func(it itemset.Item) bool { return freq[it] })
		local.BuildMasks()
		before := wireMark()
		t1 := time.Now()
		blobs, err := x.AllGather(transport.PhaseTHT, local.AppendWire(nil))
		out.PhaseSeconds[1] = time.Since(t1).Seconds()
		span("exchange:tht", out.PhaseSeconds[1], before, err)
		if err != nil {
			return nil, fmt.Errorf("tht exchange: %w", err)
		}
		segments := make([]*tht.Local, n)
		for i, b := range blobs {
			if i == self {
				segments[i] = local
				continue
			}
			seg, err := tht.DecodeWire(b)
			if err != nil {
				return nil, fmt.Errorf("tht segment from node %d: %w", i, err)
			}
			seg.BuildMasks()
			segments[i] = seg
		}
		global = tht.NewGlobal(segments)
		if h.progress != nil {
			h.progress(transport.StageTHT, u32Counts(globalCounts), blobs)
		}
	} else {
		var err error
		global, err = core.SegmentsFromWire(h.resume.THTSegments)
		if err != nil {
			return nil, fmt.Errorf("resuming tht segments: %w", err)
		}
		before := wireMark()
		t1 := time.Now()
		// The one-byte payload matters: the all-gather treats nil blobs as
		// missing contributions.
		_, err = x.AllGather(transport.PhaseResume, []byte{1})
		out.PhaseSeconds[1] = time.Since(t1).Seconds()
		span("resume:barrier", out.PhaseSeconds[1], before, err)
		if err != nil {
			return nil, fmt.Errorf("resume barrier: %w", err)
		}
	}
	if rec.Enabled() {
		rec.SetNodeGauge("tht_cascade_bytes", self, global.MemBytes())
	}

	// ---- Local mining, queueing every locally frequent itemset. ----
	partitions := core.Partition(f1, opts.PartitionSize)
	localMin := core.LocalMinCount(p.GlobalMin, db.Len(), p.TotalDocs)
	var queueSets []itemset.Itemset
	var queueCounts []int
	core.RunLocalMiner(db, opts, core.LocalMineConfig{
		Self:        self,
		LocalMin:    localMin,
		GlobalPrune: p.GlobalMin,
		Global:      global,
		FreqItems:   f1,
		Partitions:  partitions,
		Emit: func(set itemset.Itemset, count int) {
			if count < p.GlobalMin {
				out.Miner.GlobalCandidates++
			}
			queueSets = append(queueSets, set)
			queueCounts = append(queueCounts, count)
		},
		OnPass: h.onPass,
	}, &out.Miner)

	// ---- Global support counting by peer polling. ----
	pollMark := wireMark()
	t2 := time.Now()
	found, err := resolveGlobal(x, global, queueSets, queueCounts, p.GlobalMin, opts.GlobalCandidateBatch, &out.Miner)
	out.PhaseSeconds[2] = time.Since(t2).Seconds()
	span("poll:resolve", out.PhaseSeconds[2], pollMark, err)
	if err != nil {
		return nil, err
	}
	out.Found = found

	// ---- Final exchange: every node gathers the cluster's frequent
	// lists. Exiting this collective additionally proves every peer has
	// finished polling, so the poll service can be torn down safely. ----
	finalMark := wireMark()
	t3 := time.Now()
	finalBlobs, err := x.AllGather(transport.PhaseFinal, transport.AppendCountedList(nil, found))
	out.PhaseSeconds[3] = time.Since(t3).Seconds()
	span("exchange:final", out.PhaseSeconds[3], finalMark, err)
	if err != nil {
		return nil, fmt.Errorf("final exchange: %w", err)
	}
	var all []itemset.Counted
	for i, b := range finalBlobs {
		list, err := transport.DecodeCountedList(b)
		if err != nil {
			return nil, fmt.Errorf("frequent list from node %d: %w", i, err)
		}
		all = append(all, list...)
	}
	out.Merged = core.MergeFound(f1Counted, all)
	if rec.Enabled() {
		rec.SetNodeGauge("peak_held_bytes", self, out.Miner.PeakHeldBytes+out.Server.PeakHeldBytes)
	}
	return out, nil
}

// u32Counts converts the summed global item counts into their wire
// (and checkpoint) form.
func u32Counts(globalCounts []int) []uint32 {
	v := make([]uint32, len(globalCounts))
	for it, c := range globalCounts {
		v[it] = uint32(c)
	}
	return v
}

// resolveGlobal polls peers for the queued itemsets' remote support
// counts and returns those whose exact global support reaches the
// global minimum. Peers are selected per itemset from the cascaded THT
// ("only the processing nodes that have a positive TID hash count will
// be polled"); requests to one peer are batched by itemset size, split
// into chunks of at most batch sets to bound frame sizes.
func resolveGlobal(x transport.Exchange, global *tht.Global, sets []itemset.Itemset, totals []int, globalMin, batch int, m *mining.Metrics) ([]itemset.Counted, error) {
	type peerK struct{ peer, k int }
	groups := make(map[peerK][]int)
	var peersBuf []int
	slotsTotal := int64(0)
	for pos, set := range sets {
		peers, slots := global.PollPeers(set, x.NodeID(), peersBuf)
		peersBuf = peers
		slotsTotal += int64(slots)
		for _, p := range peers {
			gk := peerK{p, len(set)}
			groups[gk] = append(groups[gk], pos)
		}
	}
	m.Work.Charge(slotsTotal, mining.CostTHTSlot)
	if len(groups) > 0 {
		m.PollRounds++
	}
	for gk, positions := range groups {
		for lo := 0; lo < len(positions); lo += batch {
			hi := lo + batch
			if hi > len(positions) {
				hi = len(positions)
			}
			chunk := positions[lo:hi]
			req := make([]itemset.Itemset, len(chunk))
			for i, pos := range chunk {
				req[i] = sets[pos]
			}
			m.MessagesSent++
			counts, err := x.Poll(gk.peer, gk.k, req)
			if err != nil {
				return nil, fmt.Errorf("global counting: %w", err)
			}
			for i, pos := range chunk {
				totals[pos] += int(counts[i])
			}
		}
	}
	var found []itemset.Counted
	for i, set := range sets {
		if totals[i] >= globalMin {
			found = append(found, itemset.Counted{Set: set, Count: totals[i]})
		}
	}
	return found, nil
}

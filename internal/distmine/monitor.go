package distmine

import (
	"sync"
	"time"
)

// Liveness is the coordinator's heartbeat bookkeeping for one session
// attempt: last-beat times, pass progress, and death attributions per
// logical node. All methods are safe for concurrent use — one reader
// goroutine per node feeds it while failure handling and the straggler
// watchdog inspect it.
type Liveness struct {
	mu   sync.Mutex
	last []time.Time
	pass []int
	dead []error
}

// NewLiveness returns a tracker for n logical nodes.
func NewLiveness(n int) *Liveness {
	return &Liveness{last: make([]time.Time, n), pass: make([]int, n), dead: make([]error, n)}
}

// SetPass records the node's reported local counting pass position.
// Monotonic: a late frame carrying an older position never regresses it.
func (l *Liveness) SetPass(node, passes int) {
	l.mu.Lock()
	if passes > l.pass[node] {
		l.pass[node] = passes
	}
	l.mu.Unlock()
}

// Passes returns a copy of every node's last reported pass position.
func (l *Liveness) Passes() []int {
	l.mu.Lock()
	out := append([]int(nil), l.pass...)
	l.mu.Unlock()
	return out
}

// Beat records a sign of life (any control-plane frame) from the node.
func (l *Liveness) Beat(node int) {
	l.mu.Lock()
	l.last[node] = time.Now()
	l.mu.Unlock()
}

// LastBeat returns the node's most recent sign of life (zero if none).
func (l *Liveness) LastBeat(node int) time.Time {
	l.mu.Lock()
	t := l.last[node]
	l.mu.Unlock()
	return t
}

// MarkDead records the node's death attribution. The first cause wins;
// it reports whether this call was the one that marked it.
func (l *Liveness) MarkDead(node int, cause error) bool {
	l.mu.Lock()
	first := l.dead[node] == nil
	if first {
		l.dead[node] = cause
	}
	l.mu.Unlock()
	return first
}

// Dead returns the node's death attribution, or nil while it lives.
func (l *Liveness) Dead(node int) error {
	l.mu.Lock()
	err := l.dead[node]
	l.mu.Unlock()
	return err
}

// DeadNodes returns the indices of nodes marked dead, ascending.
func (l *Liveness) DeadNodes() []int {
	l.mu.Lock()
	var dead []int
	for i, err := range l.dead {
		if err != nil {
			dead = append(dead, i)
		}
	}
	l.mu.Unlock()
	return dead
}

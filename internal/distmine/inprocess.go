package distmine

import (
	"fmt"
	"sync"

	"pmihp/internal/itemset"
	"pmihp/internal/mining"
	"pmihp/internal/transport"
	"pmihp/internal/txdb"
)

// NodeStats is the per-node outcome of a cluster run: measured wire
// traffic and the wall-clock seconds of each exchange phase.
type NodeStats struct {
	Node int
	Docs int
	Wire transport.WireStatsSnapshot
	// PhaseSeconds: [0] item-count exchange, [1] THT exchange,
	// [2] candidate polling, [3] final frequent-list exchange.
	PhaseSeconds [4]float64
	// BusySeconds is the node's deterministic modeled busy time (mining
	// plus poll service, from the work-unit accounting).
	BusySeconds float64
}

// Result is the outcome of a distmine cluster run (in-process or
// multi-process).
type Result struct {
	// Frequent is the merged globally frequent itemset list, identical
	// to core.MinePMIHP's on the same inputs.
	Frequent []itemset.Counted
	// Metrics aggregates the nodes' mining and poll-service accounting;
	// its Wire* fields carry the cluster-wide measured traffic.
	Metrics mining.Metrics
	Nodes   []NodeStats
	// Imbalance is the run's pass-imbalance ratio max(busy)*n/sum(busy)
	// over the nodes' modeled busy seconds: 1.0 is a perfectly balanced
	// split, n is one node doing all the work. Deterministic for a given
	// database and partitioning.
	Imbalance float64
}

// imbalanceRatio computes max(busy)*n/sum(busy) (0 when no node
// reported busy time).
func imbalanceRatio(busy []float64) float64 {
	var max, sum float64
	for _, b := range busy {
		if b > max {
			max = b
		}
		sum += b
	}
	if sum <= 0 {
		return 0
	}
	return max * float64(len(busy)) / sum
}

// params resolves the cluster-wide session parameters from the options,
// once, at the coordinator (or the in-process driver) — nodes receive
// resolved values and never re-derive them.
func params(db *txdb.DB, opts mining.Options) (NodeParams, mining.Options) {
	opts = opts.WithDefaults()
	return NodeParams{
		TotalDocs:      db.Len(),
		NumItems:       db.NumItems(),
		GlobalMin:      opts.MinCount(db.Len()),
		THTEntries:     opts.THTEntries,
		PartitionSize:  opts.PartitionSize,
		MaxK:           opts.MaxK,
		Workers:        opts.IntraNodeWorkers,
		DenseThreshold: opts.DenseThreshold,
		Partitioner:    opts.Partitioner,
	}, opts
}

// splitParts cuts the database into n logical partitions under the
// selected partitioner — the coordinator-side twin of core.MinePMIHP's
// split hook. Both cut along chronological order; they differ only in
// where the cuts fall (equal document counts vs equal estimated work),
// so either way every partition is a contiguous chronological range and
// their union is db.
func splitParts(db *txdb.DB, n int, p mining.Partitioner) []*txdb.DB {
	if p == mining.PartitionByWork {
		return db.SplitByWork(n)
	}
	return db.SplitChronological(n)
}

// assemble folds per-node outcomes into the cluster result. merged is
// any node's Merged list (they are all identical).
func assemble(parts []*txdb.DB, outcomes []*nodeOutcome, stats []transport.WireStatsSnapshot, merged []itemset.Counted) *Result {
	res := &Result{
		Frequent: merged,
		Metrics:  mining.NewMetrics("distmine"),
		Nodes:    make([]NodeStats, len(outcomes)),
	}
	busy := make([]float64, len(outcomes))
	for i, o := range outcomes {
		busy[i] = o.Miner.Work.Seconds() + o.Server.Work.Seconds()
		ns := NodeStats{Node: i, Docs: parts[i].Len(), Wire: stats[i], PhaseSeconds: o.PhaseSeconds, BusySeconds: busy[i]}
		res.Nodes[i] = ns
		res.Metrics.Merge(&o.Miner)
		res.Metrics.Merge(&o.Server)
		res.Metrics.WireMessagesSent += ns.Wire.MessagesSent
		res.Metrics.WireMessagesReceived += ns.Wire.MessagesReceived
		res.Metrics.WireBytesSent += ns.Wire.BytesSent
		res.Metrics.WireBytesReceived += ns.Wire.BytesReceived
		res.Metrics.WireRetries += ns.Wire.Retries
		for _, s := range o.PhaseSeconds {
			res.Metrics.WireSeconds += s
		}
	}
	res.Imbalance = imbalanceRatio(busy)
	res.Metrics.Algorithm = "distmine"
	return res
}

// MineInProcess runs the distributed node protocol on n in-process
// nodes connected by the channel exchange — same protocol, no sockets.
// It exists for tests and as the reference the TCP runtime is checked
// against; both produce frequent itemsets byte-identical to
// core.MinePMIHP in exact mode.
func MineInProcess(db *txdb.DB, n int, opts mining.Options) (*Result, error) {
	if n <= 0 {
		return nil, fmt.Errorf("distmine: need at least one node, got %d", n)
	}
	p, opts := params(db, opts)
	parts := splitParts(db, n, p.Partitioner)
	exchanges := transport.NewChanGroup(n)

	outcomes := make([]*nodeOutcome, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outcomes[i], errs[i] = runNode(exchanges[i], parts[i], p, nodeHooks{obs: opts.Obs})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("distmine: node %d: %w", i, err)
		}
	}
	stats := make([]transport.WireStatsSnapshot, n)
	for i := range stats {
		stats[i] = exchanges[i].Stats().Snapshot()
	}
	return assemble(parts, outcomes, stats, outcomes[0].Merged), nil
}

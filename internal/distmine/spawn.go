package distmine

import (
	"bufio"
	"fmt"
	"io"
	"os/exec"
	"strings"
	"sync"
	"time"
)

// announcePrefix is the line a node daemon prints on startup; the
// spawner parses the bound address from it.
const announcePrefix = "pmihp-node listening on "

// Spawner starts and owns pmihp-node worker processes. It exists so
// every error path — a child that never announces, a later child
// failing after earlier ones started, a coordinator that dies before
// the first exchange — converges on the same idempotent Stop, leaving
// no orphaned workers behind. It also serves as ClusterConfig.Respawn:
// Spawn starts one replacement daemon on demand.
type Spawner struct {
	// Bin is the pmihp-node binary to exec.
	Bin string
	// Stderr receives the children's stderr (nil discards it).
	Stderr io.Writer
	// AnnounceTimeout bounds the wait for a child's address announcement
	// (zero: 15s).
	AnnounceTimeout time.Duration

	mu      sync.Mutex
	procs   []*exec.Cmd
	stopped bool
}

// NewSpawner returns a spawner for the given binary.
func NewSpawner(bin string, stderr io.Writer) *Spawner {
	return &Spawner{Bin: bin, Stderr: stderr}
}

// Spawn starts one worker on an ephemeral loopback port and returns its
// announced address. A child that fails to announce is killed before
// the error returns — it never outlives the call.
func (s *Spawner) Spawn() (string, error) {
	timeout := s.AnnounceTimeout
	if timeout <= 0 {
		timeout = 15 * time.Second
	}
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return "", fmt.Errorf("distmine: spawner already stopped")
	}
	s.mu.Unlock()

	cmd := exec.Command(s.Bin, "-listen", "127.0.0.1:0")
	cmd.Stderr = s.Stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return "", fmt.Errorf("distmine: worker stdout: %w", err)
	}
	if err := cmd.Start(); err != nil {
		return "", fmt.Errorf("distmine: starting worker (%s): %w", s.Bin, err)
	}
	addr, err := readAnnouncement(out, timeout)
	if err != nil {
		cmd.Process.Kill()
		cmd.Wait()
		return "", fmt.Errorf("distmine: worker did not announce its address: %w", err)
	}

	s.mu.Lock()
	if s.stopped {
		// Stop raced us; do not leak the child past it.
		s.mu.Unlock()
		cmd.Process.Kill()
		cmd.Wait()
		return "", fmt.Errorf("distmine: spawner already stopped")
	}
	s.procs = append(s.procs, cmd)
	s.mu.Unlock()
	return addr, nil
}

// SpawnN starts n workers and returns their addresses in node order. On
// any failure it stops every child it already started.
func (s *Spawner) SpawnN(n int) ([]string, error) {
	addrs := make([]string, 0, n)
	for i := 0; i < n; i++ {
		addr, err := s.Spawn()
		if err != nil {
			s.Stop()
			return nil, fmt.Errorf("distmine: node %d: %w", i, err)
		}
		addrs = append(addrs, addr)
	}
	return addrs, nil
}

// Stop kills and reaps every spawned worker. It is idempotent and safe
// to call from any goroutine; after Stop, Spawn refuses to start more.
func (s *Spawner) Stop() {
	s.mu.Lock()
	procs := s.procs
	s.procs = nil
	s.stopped = true
	s.mu.Unlock()
	for _, cmd := range procs {
		if cmd.Process != nil {
			cmd.Process.Kill()
		}
		cmd.Wait()
	}
}

// SpawnNodes starts n pmihp-node worker processes from the given binary
// (each listening on an ephemeral loopback port), waits for their
// address announcements, and returns the addresses in node order plus a
// stop function that terminates the processes. On error, any processes
// already started are stopped.
func SpawnNodes(bin string, n int, stderr io.Writer) (addrs []string, stop func(), err error) {
	s := NewSpawner(bin, stderr)
	addrs, err = s.SpawnN(n)
	return addrs, s.Stop, err
}

// readAnnouncement scans the daemon's stdout for the announce line.
func readAnnouncement(out io.Reader, timeout time.Duration) (string, error) {
	type lineOrErr struct {
		line string
		err  error
	}
	ch := make(chan lineOrErr, 1)
	go func() {
		sc := bufio.NewScanner(out)
		for sc.Scan() {
			line := sc.Text()
			if strings.Contains(line, announcePrefix) {
				at := strings.Index(line, announcePrefix)
				ch <- lineOrErr{line: strings.TrimSpace(line[at+len(announcePrefix):])}
				return
			}
		}
		err := sc.Err()
		if err == nil {
			err = io.ErrUnexpectedEOF
		}
		ch <- lineOrErr{err: err}
	}()
	select {
	case r := <-ch:
		return r.line, r.err
	case <-time.After(timeout):
		return "", fmt.Errorf("timed out after %v", timeout)
	}
}

package distmine

import (
	"bufio"
	"fmt"
	"io"
	"os/exec"
	"strings"
	"time"
)

// announcePrefix is the line a node daemon prints on startup; the
// spawner parses the bound address from it.
const announcePrefix = "pmihp-node listening on "

// SpawnNodes starts n pmihp-node worker processes from the given binary
// (each listening on an ephemeral loopback port), waits for their
// address announcements, and returns the addresses in node order plus a
// stop function that terminates the processes. On error, any processes
// already started are stopped.
func SpawnNodes(bin string, n int, stderr io.Writer) (addrs []string, stop func(), err error) {
	var procs []*exec.Cmd
	stop = func() {
		for _, cmd := range procs {
			if cmd.Process != nil {
				cmd.Process.Kill()
			}
			cmd.Wait()
		}
	}
	defer func() {
		if err != nil {
			stop()
		}
	}()
	for i := 0; i < n; i++ {
		cmd := exec.Command(bin, "-listen", "127.0.0.1:0")
		cmd.Stderr = stderr
		out, perr := cmd.StdoutPipe()
		if perr != nil {
			return nil, stop, fmt.Errorf("distmine: node %d stdout: %w", i, perr)
		}
		if serr := cmd.Start(); serr != nil {
			return nil, stop, fmt.Errorf("distmine: starting node %d (%s): %w", i, bin, serr)
		}
		procs = append(procs, cmd)
		addr, aerr := readAnnouncement(out, 15*time.Second)
		if aerr != nil {
			return nil, stop, fmt.Errorf("distmine: node %d did not announce its address: %w", i, aerr)
		}
		addrs = append(addrs, addr)
	}
	return addrs, stop, nil
}

// readAnnouncement scans the daemon's stdout for the announce line.
func readAnnouncement(out io.Reader, timeout time.Duration) (string, error) {
	type lineOrErr struct {
		line string
		err  error
	}
	ch := make(chan lineOrErr, 1)
	go func() {
		sc := bufio.NewScanner(out)
		for sc.Scan() {
			line := sc.Text()
			if strings.Contains(line, announcePrefix) {
				at := strings.Index(line, announcePrefix)
				ch <- lineOrErr{line: strings.TrimSpace(line[at+len(announcePrefix):])}
				return
			}
		}
		err := sc.Err()
		if err == nil {
			err = io.ErrUnexpectedEOF
		}
		ch <- lineOrErr{err: err}
	}()
	select {
	case r := <-ch:
		return r.line, r.err
	case <-time.After(timeout):
		return "", fmt.Errorf("timed out after %v", timeout)
	}
}

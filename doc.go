// Package pmihp is a from-scratch Go reproduction of "Parallel Mining of
// Association Rules from Text Databases on a Cluster of Workstations"
// (Holt & Chung, IPDPS 2004).
//
// The module implements the paper's contribution — the sequential MIHP
// miner (Multipass-Apriori + Inverted Hashing and Pruning + transaction
// trimming) and its parallel version PMIHP with asynchronous per-node
// miners, cascaded TID hash tables and peer polling — together with every
// substrate and baseline its evaluation depends on: Apriori, DHP,
// FP-Growth, Count Distribution, a simulated cluster of workstations, a
// synthetic WSJ-like corpus generator, the text-preprocessing pipeline,
// association-rule generation, and rule-driven query expansion.
//
// Entry points:
//
//   - internal/core: MineMIHP and MinePMIHP (the paper's algorithms)
//   - internal/experiments: one runner per figure/table of the evaluation
//   - cmd/pmihp-mine, cmd/pmihp-bench, cmd/corpusgen: command-line tools
//   - examples/: runnable end-to-end programs
//
// See README.md for a walkthrough, DESIGN.md for the system inventory and
// substitutions, and EXPERIMENTS.md for the paper-vs-measured record. The
// benchmarks in bench_test.go regenerate the workload behind each figure.
package pmihp
